#include "circuit/qaoa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "circuit/diagonal.hpp"
#include "qubo/heuristic.hpp"

namespace nck {

double NoiseModel::fidelity(std::size_t n_1q, std::size_t n_cx) const {
  return std::pow(1.0 - error_1q, static_cast<double>(n_1q)) *
         std::pow(1.0 - error_cx, static_cast<double>(n_cx));
}

Circuit build_qaoa_circuit(const IsingModel& ising,
                           const std::vector<double>& params) {
  if (params.size() % 2 != 0 || params.empty()) {
    throw std::invalid_argument("build_qaoa_circuit: need 2p parameters");
  }
  const std::size_t n = ising.num_spins();
  Circuit circuit(n);
  for (std::uint32_t q = 0; q < n; ++q) circuit.h(q);
  for (std::size_t layer = 0; layer < params.size() / 2; ++layer) {
    const double gamma = params[2 * layer];
    const double beta = params[2 * layer + 1];
    // Cost layer: e^{-i gamma H_C}.
    for (const auto& [a, b, j] : ising.j) {
      if (j != 0.0) circuit.rzz(a, b, 2.0 * gamma * j);
    }
    for (std::uint32_t q = 0; q < n; ++q) {
      // rz(theta) phases bit 1 (spin +1) by e^{+i theta/2}, so the field
      // term e^{-i gamma h s} needs theta = -2 gamma h. The old +2 gamma h
      // evolved under sum J ss - sum h s: flipped field signs that the
      // optimizer cannot compensate on mixed h+J problems.
      if (ising.h[q] != 0.0) circuit.rz(q, -2.0 * gamma * ising.h[q]);
    }
    // Mixer layer: e^{-i beta sum X}.
    for (std::uint32_t q = 0; q < n; ++q) circuit.rx(q, 2.0 * beta);
  }
  return circuit;
}

namespace {

std::vector<bool> bits_of(std::uint64_t basis, std::size_t n) {
  std::vector<bool> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = (basis >> i) & 1u;
  return x;
}

// Applies the noise channel to a batch of shots in place.
void apply_noise(std::vector<std::vector<bool>>& shots, double fidelity,
                 double readout_flip, Rng& rng) {
  for (auto& shot : shots) {
    if (!rng.bernoulli(fidelity)) {
      for (std::size_t i = 0; i < shot.size(); ++i) {
        shot[i] = rng.bernoulli(0.5);  // fully depolarized
      }
      continue;
    }
    if (readout_flip > 0.0) {
      for (std::size_t i = 0; i < shot.size(); ++i) {
        if (rng.bernoulli(readout_flip)) shot[i] = !shot[i];
      }
    }
  }
}

}  // namespace

QaoaPrepared prepare_qaoa(const Qubo& qubo, const Graph& coupling,
                          const QaoaOptions& options, obs::Trace* trace) {
  QaoaPrepared prepared;
  prepared.qubits = qubo.num_variables();
  prepared.ising = qubo_to_ising(qubo);

  // Transpiled metrics come from a representative (parameter-independent)
  // circuit: all QAOA iterations share gate structure, only angles differ
  // (the paper makes the same observation for its depth measurements).
  obs::Span transpile_span(trace, "transpile");
  const std::vector<double> probe(static_cast<std::size_t>(2 * options.p), 0.5);
  const Circuit logical = build_qaoa_circuit(prepared.ising, probe);
  const auto transpiled = transpile(logical, coupling);
  transpile_span.close();
  if (!transpiled) {
    throw std::invalid_argument("run_qaoa: circuit does not fit the device");
  }
  prepared.depth = transpiled->depth;
  prepared.cx_count = transpiled->cx_count;
  prepared.swap_count = transpiled->swap_count;
  prepared.qubits_touched = transpiled->qubits_touched;
  prepared.n_1q = transpiled->physical.num_gates() -
                  transpiled->physical.num_two_qubit_gates();
  return prepared;
}

QaoaResult run_qaoa_prepared(const Qubo& qubo, const QaoaPrepared& prepared,
                             const QaoaOptions& options, Rng& rng,
                             obs::Trace* trace) {
  QaoaResult result;
  const std::size_t n = prepared.qubits;
  result.qubits = n;
  const IsingModel& ising = prepared.ising;
  result.depth = prepared.depth;
  result.cx_count = prepared.cx_count;
  result.swap_count = prepared.swap_count;
  result.qubits_touched = prepared.qubits_touched;
  result.fidelity = options.noise.fidelity(prepared.n_1q, result.cx_count);
  if (trace) {
    obs::Registry& reg = trace->registry();
    reg.set("transpile.depth", static_cast<double>(result.depth));
    reg.set("transpile.cx_count", static_cast<double>(result.cx_count));
    reg.set("transpile.swap_count", static_cast<double>(result.swap_count));
    reg.set("transpile.qubits_touched",
            static_cast<double>(result.qubits_touched));
    reg.set("qaoa.fidelity", result.fidelity);
  }

  if (n <= options.max_sim_qubits) {
    result.mode = "statevector";
    // Fused evolution: the cost layer's RZZ/RZ diagonal collapses into one
    // precomputed phase table (circuit/diagonal.hpp), built once and shared
    // by every optimizer evaluation; gate-by-gate circuits are only built
    // for transpiled metrics above.
    const DiagonalCost cost(ising, n);
    StateVector state(n);
    // Shot-based objective: mean sampled energy under the noise channel,
    // exactly what the hardware loop would minimize.
    auto sample_circuit = [&](const std::vector<double>& params,
                              std::size_t shots) {
      obs::count(trace, "statevector.runs");
      cost.evolve_qaoa(state, params);
      const auto basis = state.sample(shots, rng);
      std::vector<std::vector<bool>> out;
      out.reserve(basis.size());
      for (std::uint64_t b : basis) out.push_back(bits_of(b, n));
      apply_noise(out, result.fidelity, options.noise.readout_flip, rng);
      return out;
    };
    const Objective objective = [&](const std::vector<double>& params) {
      // A few hundred shots estimate the mean well enough for the outer
      // loop; the final job uses the full shot budget.
      const auto shots = sample_circuit(params, std::max<std::size_t>(
                                                    256, options.shots / 8));
      double mean = 0.0;
      for (const auto& shot : shots) mean += qubo.energy(shot);
      return mean / static_cast<double>(shots.size());
    };
    std::vector<double> x0(static_cast<std::size_t>(2 * options.p));
    for (std::size_t i = 0; i < x0.size(); ++i) {
      x0[i] = i % 2 == 0 ? 0.8 : 0.4;  // gamma, beta starting guesses
    }
    obs::Span optimize_span(trace, "qaoa.optimize");
    const OptimizeResult opt = nelder_mead(objective, x0, options.optimizer);
    optimize_span.close();
    obs::Span final_span(trace, "qaoa.sample");
    result.samples = sample_circuit(opt.x, options.shots);
    final_span.close();
    result.num_jobs = opt.evaluations + 1;
  } else {
    // Boltzmann surrogate for circuits beyond the state-vector cutoff.
    result.mode = "boltzmann-surrogate";
    obs::Span surrogate_span(trace, "qaoa.surrogate");
    Qubo normalized = qubo;
    const double scale = normalized.max_abs_coefficient();
    if (scale > 0.0) normalized.scale(1.0 / scale);
    const double beta = options.surrogate_beta;
    auto samples = boltzmann_sample(normalized, beta, options.shots, rng);
    result.samples.reserve(samples.size());
    for (auto& s : samples) result.samples.push_back(std::move(s.x));
    apply_noise(result.samples, result.fidelity, options.noise.readout_flip,
                rng);
    // The surrogate still "runs" the optimizer-equivalent number of jobs.
    result.num_jobs = options.optimizer.max_evaluations + 1;
  }

  result.energies.reserve(result.samples.size());
  double best = std::numeric_limits<double>::infinity();
  for (const auto& s : result.samples) {
    const double e = qubo.energy(s);
    result.energies.push_back(e);
    best = std::min(best, e);
  }
  result.best_energy = best;
  return result;
}

QaoaResult run_qaoa(const Qubo& qubo, const Graph& coupling,
                    const QaoaOptions& options, Rng& rng, obs::Trace* trace) {
  const QaoaPrepared prepared = prepare_qaoa(qubo, coupling, options, trace);
  return run_qaoa_prepared(qubo, prepared, options, rng, trace);
}

}  // namespace nck
