// End-to-end circuit-model backend: NchooseK program -> QUBO -> QAOA on a
// heavy-hex device -> samples over the program's variables, plus the IBM
// job-time model of Section VIII-C (each QAOA job 7-23 s with no visible
// size correlation; ~500 s of server time per problem).
#pragma once

#include <optional>

#include "circuit/qaoa.hpp"
#include "core/compile.hpp"
#include "core/env.hpp"
#include "resilience/fault.hpp"
#include "synth/engine.hpp"

namespace nck {

struct IbmTimingModel {
  double job_base_s = 7.0;       // floor of observed job time
  double job_jitter_s = 16.0;    // observed spread (uncorrelated with size)
  double server_overhead_s = 500.0;  // create/transpile/validate/queue-free
  double optimizer_s_per_job = 2.5;  // classical step between jobs

  double job_seconds(Rng& rng) const {
    return job_base_s + job_jitter_s * rng.uniform();
  }
};

struct CircuitBackendOptions {
  QaoaOptions qaoa;
  CompileOptions compile;
  IbmTimingModel timing;
  /// When non-null, consulted at job submission (rejection / queue
  /// timeout) and before execution (transient circuit errors); a fired
  /// fault aborts the run with `CircuitOutcome::fault` set.
  FaultInjector* faults = nullptr;
};

struct CircuitOutcome {
  bool fits = false;             // false => device too small
  std::size_t qubits_used = 0;   // QUBO vars incl. ancillas (Fig 8 y-axis)
  std::size_t qubits_touched = 0;
  std::size_t depth = 0;         // Fig 9/10 y-axis
  std::size_t cx_count = 0;
  std::size_t num_jobs = 0;
  double fidelity = 1.0;
  std::string mode;
  /// Samples projected to program variables, ordered by ascending energy.
  std::vector<std::vector<bool>> samples;
  std::vector<Evaluation> evaluations;
  /// Timing model outputs.
  std::vector<double> job_seconds;  // one entry per job (Fig 11 data)
  double total_seconds = 0.0;
  double client_compile_ms = 0.0;
  /// Injected fault that aborted this run (nullopt = no fault fired).
  std::optional<FaultKind> fault;
};

/// The circuit backend's prepare artifact: compiled QUBO plus the
/// deterministic transpile-probe results. Immutable once built (the
/// backend::Plan the plan cache stores); execute_circuit_backend() runs
/// any number of noisy QAOA sessions against it.
struct CircuitPrepared {
  Env env;  // structural copy used to evaluate samples
  CompiledQubo compiled;
  /// False when the problem has more QUBO variables than physical qubits
  /// (or SWAP routing could not place it); the qaoa field is then unset.
  bool fits = false;
  QaoaPrepared qaoa;
  double compile_ms = 0.0;  // client time of the original prepare

  /// Approximate heap footprint, for the plan cache's byte budget.
  std::size_t bytes() const noexcept;
};

/// Client-side half: compile -> fit check -> transpile probe.
/// Deterministic; consumes no randomness and no faults. When `trace` is
/// non-null, records the compile / transpile stage spans.
CircuitPrepared prepare_circuit_backend(const Env& env, const Graph& coupling,
                                        SynthEngine& engine,
                                        const CircuitBackendOptions& options = {},
                                        obs::Trace* trace = nullptr);

/// Device-side half: submission/execution fault gates, the QAOA optimizer
/// loop and final sampling job, energy ordering, and the IBM timing
/// model. Touches `rng` only after the fault gates pass. Requires
/// prepared.fits.
CircuitOutcome execute_circuit_backend(const CircuitPrepared& prepared,
                                       Rng& rng,
                                       const CircuitBackendOptions& options = {},
                                       obs::Trace* trace = nullptr);

/// Full pipeline: prepare_circuit_backend followed by
/// execute_circuit_backend on the same rng. When `trace` is non-null,
/// records compile / transpile / QAOA stage spans and metrics, plus the
/// modeled IBM job times.
CircuitOutcome run_circuit_backend(const Env& env, const Graph& coupling,
                                   SynthEngine& engine, Rng& rng,
                                   const CircuitBackendOptions& options = {},
                                   obs::Trace* trace = nullptr);

}  // namespace nck
