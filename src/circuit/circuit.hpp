// Gate-level circuit IR shared by the QAOA builder, the transpiler and the
// simulator. Depth is computed by greedy layering (per-qubit timelines),
// matching the "number of gates in the longest path" metric of Figs 9-10.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/statevector.hpp"

namespace nck {

enum class GateKind : std::uint8_t {
  kH,
  kX,
  kRX,
  kRY,
  kRZ,
  kCX,
  kCZ,
  kRZZ,
  kXY,  // exp(-i theta/4 (XX + YY)); the Alternating-Operator-Ansatz mixer
  kSwap,
};

struct Gate {
  GateKind kind;
  std::uint32_t q0 = 0;
  std::uint32_t q1 = 0;  // unused for single-qubit gates
  double angle = 0.0;    // unused for non-rotation gates

  bool two_qubit() const noexcept {
    return kind == GateKind::kCX || kind == GateKind::kCZ ||
           kind == GateKind::kRZZ || kind == GateKind::kXY ||
           kind == GateKind::kSwap;
  }
};

const char* gate_name(GateKind kind) noexcept;

class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {}

  std::size_t num_qubits() const noexcept { return num_qubits_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  std::size_t num_gates() const noexcept { return gates_.size(); }
  std::size_t num_two_qubit_gates() const noexcept;

  void h(std::uint32_t q) { push({GateKind::kH, q, 0, 0.0}); }
  void x(std::uint32_t q) { push({GateKind::kX, q, 0, 0.0}); }
  void rx(std::uint32_t q, double t) { push({GateKind::kRX, q, 0, t}); }
  void ry(std::uint32_t q, double t) { push({GateKind::kRY, q, 0, t}); }
  void rz(std::uint32_t q, double t) { push({GateKind::kRZ, q, 0, t}); }
  void cx(std::uint32_t c, std::uint32_t t) { push({GateKind::kCX, c, t, 0.0}); }
  void cz(std::uint32_t a, std::uint32_t b) { push({GateKind::kCZ, a, b, 0.0}); }
  void rzz(std::uint32_t a, std::uint32_t b, double t) {
    push({GateKind::kRZZ, a, b, t});
  }
  void xy(std::uint32_t a, std::uint32_t b, double t) {
    push({GateKind::kXY, a, b, t});
  }
  void swap_qubits(std::uint32_t a, std::uint32_t b) {
    push({GateKind::kSwap, a, b, 0.0});
  }

  /// Greedy-layered circuit depth (longest chain of dependent gates).
  std::size_t depth() const;

  /// Applies all gates to the state vector (must have >= num_qubits qubits).
  void run(StateVector& state) const;

  /// One-gate-per-line disassembly for debugging and docs.
  std::string to_string() const;

 private:
  void push(Gate g);

  std::size_t num_qubits_;
  std::vector<Gate> gates_;
};

}  // namespace nck
