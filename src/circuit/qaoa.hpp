// QAOA driver (Farhi et al.) for QUBO problems — how NchooseK executes on
// circuit-model devices (Section V). The compiled QUBO becomes the problem
// Hamiltonian; p alternating cost/mixer layers are optimized by a classical
// outer loop (each objective evaluation is one "job" of `shots` shots,
// matching the paper's 25-35 jobs of 4000 shots each).
//
// Fidelity model: after transpilation the circuit's gate counts feed a
// global depolarizing channel (survival probability F); each shot is
// replaced by a uniform random bitstring with probability 1 - F, and
// surviving shots suffer independent per-bit readout flips. For circuits
// too wide to simulate, the ideal QAOA distribution is approximated by a
// low-temperature Boltzmann distribution over the QUBO (see DESIGN.md).
#pragma once

#include <string>

#include "circuit/circuit.hpp"
#include "circuit/optimizer.hpp"
#include "circuit/transpiler.hpp"
#include "obs/obs.hpp"
#include "qubo/ising.hpp"
#include "qubo/qubo.hpp"
#include "util/rng.hpp"

namespace nck {

// Calibration note: these rates are effective *model* parameters, chosen so
// that fidelity-vs-size reproduces the paper's discrete optimal ->
// suboptimal -> incorrect barrier on our transpiler. Our SWAP router inserts
// roughly 2x the CX gates of IBM's compiler, so the per-CX rate sits below
// the hardware-reported ~1e-2 to keep the product comparable.
struct NoiseModel {
  double error_1q = 0.0002;    // depolarizing contribution per 1q gate
  double error_cx = 0.004;     // per CX gate
  double readout_flip = 0.012; // per-bit readout error

  /// Survival probability of a circuit with the given gate counts.
  double fidelity(std::size_t n_1q, std::size_t n_cx) const;
};

struct QaoaOptions {
  int p = 1;                 // QAOA depth (Qiskit's default reps)
  std::size_t shots = 4000;  // per job
  NelderMeadOptions optimizer{/*max_evaluations=*/32, 0.4, 1e-3};
  NoiseModel noise;
  std::size_t max_sim_qubits = 22;  // state-vector cutoff
  double surrogate_beta = 1.5;      // Boltzmann surrogate inverse temperature
                                    // (relative to normalized coefficients)
};

struct QaoaResult {
  /// Final-distribution samples over the QUBO variables, with energies.
  std::vector<std::vector<bool>> samples;
  std::vector<double> energies;
  double best_energy = 0.0;
  std::size_t num_jobs = 0;  // objective evaluations + the final sampling job
  std::string mode;          // "statevector" or "boltzmann-surrogate"
  double fidelity = 1.0;     // depolarizing survival probability
  // Transpiled-circuit metrics (exact in both modes):
  std::size_t qubits = 0;        // QUBO variables == logical qubits
  std::size_t qubits_touched = 0;  // physical qubits used after routing
  std::size_t depth = 0;
  std::size_t cx_count = 0;
  std::size_t swap_count = 0;
};

/// Builds the p-layer QAOA circuit for the Ising cost Hamiltonian.
/// `params` holds (gamma_1, beta_1, ..., gamma_p, beta_p).
Circuit build_qaoa_circuit(const IsingModel& ising,
                           const std::vector<double>& params);

/// The deterministic, parameter-independent half of a QAOA run: the Ising
/// model plus the transpile-probe metrics (all QAOA iterations share gate
/// structure, only angles differ). This is the expensive, cacheable part;
/// run_qaoa_prepared() executes any number of noisy runs against it.
struct QaoaPrepared {
  IsingModel ising;
  std::size_t qubits = 0;          // QUBO variables == logical qubits
  std::size_t qubits_touched = 0;  // physical qubits used after routing
  std::size_t depth = 0;
  std::size_t cx_count = 0;
  std::size_t swap_count = 0;
  std::size_t n_1q = 0;  // 1-qubit gate count, for the fidelity model
};

/// Transpiles the probe circuit and captures its metrics. Deterministic;
/// depends only on the QUBO structure, the coupling map, and options.p.
/// Throws std::invalid_argument if the device is smaller than the problem.
/// When `trace` is non-null, records the transpile span.
QaoaPrepared prepare_qaoa(const Qubo& qubo, const Graph& coupling,
                          const QaoaOptions& options,
                          obs::Trace* trace = nullptr);

/// The stochastic half: optimizer loop + final sampling job under the
/// noise model (fidelity is derived here from the prepared gate counts,
/// so noise-model changes never invalidate a cached preparation).
/// When `trace` is non-null, records optimize / sample spans, the
/// transpiled-circuit gauges, the fidelity, and statevector-run counters.
QaoaResult run_qaoa_prepared(const Qubo& qubo, const QaoaPrepared& prepared,
                             const QaoaOptions& options, Rng& rng,
                             obs::Trace* trace = nullptr);

/// Runs the full QAOA pipeline against the given coupling map:
/// prepare_qaoa followed by run_qaoa_prepared.
/// Throws std::invalid_argument if the device is smaller than the problem.
QaoaResult run_qaoa(const Qubo& qubo, const Graph& coupling,
                    const QaoaOptions& options, Rng& rng,
                    obs::Trace* trace = nullptr);

}  // namespace nck
