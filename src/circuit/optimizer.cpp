#include "circuit/optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace nck {

OptimizeResult nelder_mead(const Objective& f, std::vector<double> x0,
                           const NelderMeadOptions& options) {
  const std::size_t n = x0.size();
  OptimizeResult result;

  struct Point {
    std::vector<double> x;
    double value;
  };
  auto eval = [&](std::vector<double> x) {
    ++result.evaluations;
    const double v = f(x);
    return Point{std::move(x), v};
  };

  // Initial simplex: x0 plus one step along each axis.
  std::vector<Point> simplex;
  simplex.push_back(eval(x0));
  for (std::size_t i = 0; i < n; ++i) {
    auto x = x0;
    x[i] += options.initial_step;
    simplex.push_back(eval(std::move(x)));
  }

  auto by_value = [](const Point& a, const Point& b) {
    return a.value < b.value;
  };

  while (result.evaluations < options.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(), by_value);
    if (simplex.back().value - simplex.front().value < options.tolerance) break;

    // Centroid of all but the worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i < simplex.size() - 1; ++i) {
      for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i].x[d];
    }
    for (double& c : centroid) c /= static_cast<double>(simplex.size() - 1);

    auto blend = [&](double t) {
      std::vector<double> x(n);
      for (std::size_t d = 0; d < n; ++d) {
        x[d] = centroid[d] + t * (simplex.back().x[d] - centroid[d]);
      }
      return x;
    };

    const Point reflected = eval(blend(-1.0));
    if (reflected.value < simplex.front().value) {
      const Point expanded = eval(blend(-2.0));
      simplex.back() = expanded.value < reflected.value ? expanded : reflected;
    } else if (reflected.value < simplex[simplex.size() - 2].value) {
      simplex.back() = reflected;
    } else {
      const Point contracted = eval(blend(0.5));
      if (contracted.value < simplex.back().value) {
        simplex.back() = contracted;
      } else {
        // Shrink towards the best point.
        for (std::size_t i = 1; i < simplex.size(); ++i) {
          std::vector<double> x(n);
          for (std::size_t d = 0; d < n; ++d) {
            x[d] = 0.5 * (simplex[0].x[d] + simplex[i].x[d]);
          }
          simplex[i] = eval(std::move(x));
          if (result.evaluations >= options.max_evaluations) break;
        }
      }
    }
  }

  std::sort(simplex.begin(), simplex.end(), by_value);
  result.x = simplex.front().x;
  result.value = simplex.front().value;
  return result;
}

OptimizeResult spsa(const Objective& f, std::vector<double> x0,
                    const SpsaOptions& options) {
  const std::size_t n = x0.size();
  Rng rng(options.seed);
  OptimizeResult result;
  std::vector<double> x = std::move(x0);

  for (std::size_t k = 0; k < options.iterations; ++k) {
    const double ak =
        options.a / std::pow(static_cast<double>(k + 1), options.alpha);
    const double ck =
        options.c / std::pow(static_cast<double>(k + 1), options.gamma);
    std::vector<double> delta(n);
    for (double& d : delta) d = rng.bernoulli(0.5) ? 1.0 : -1.0;

    std::vector<double> xp = x, xm = x;
    for (std::size_t d = 0; d < n; ++d) {
      xp[d] += ck * delta[d];
      xm[d] -= ck * delta[d];
    }
    const double fp = f(xp);
    const double fm = f(xm);
    result.evaluations += 2;
    for (std::size_t d = 0; d < n; ++d) {
      x[d] -= ak * (fp - fm) / (2.0 * ck * delta[d]);
    }
  }
  result.x = x;
  result.value = f(x);
  ++result.evaluations;
  return result;
}

}  // namespace nck
