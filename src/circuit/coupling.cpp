#include "circuit/coupling.hpp"

#include <array>
#include <algorithm>
#include <stdexcept>
#include <vector>

namespace nck {

Graph heavy_hex_lattice(int rows) {
  if (rows < 2) throw std::invalid_argument("heavy_hex_lattice: rows < 2");

  // Row sizes: 10, 11, ..., 11, 10.
  std::vector<int> row_size(static_cast<std::size_t>(rows), 11);
  row_size.front() = 10;
  row_size.back() = 10;

  // Assign ids: rows interleaved with their bridge qubits, in reading order.
  std::vector<std::vector<Graph::Vertex>> row_ids(row_size.size());
  std::vector<std::array<Graph::Vertex, 3>> bridge_ids(
      static_cast<std::size_t>(rows - 1));
  Graph::Vertex next = 0;
  for (int r = 0; r < rows; ++r) {
    for (int i = 0; i < row_size[static_cast<std::size_t>(r)]; ++i) {
      row_ids[static_cast<std::size_t>(r)].push_back(next++);
    }
    if (r + 1 < rows) {
      for (int b = 0; b < 3; ++b) {
        bridge_ids[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)] =
            next++;
      }
    }
  }

  Graph g(next);
  // Linear chains within each row.
  for (const auto& ids : row_ids) {
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      g.add_edge(ids[i], ids[i + 1]);
    }
  }
  // Bridges: attachment points alternate across gaps, clamped to row length.
  for (int r = 0; r + 1 < rows; ++r) {
    const bool even_gap = (r % 2) == 0;
    const int points[3] = {even_gap ? 0 : 2, even_gap ? 4 : 6,
                           even_gap ? 8 : 10};
    for (int b = 0; b < 3; ++b) {
      const auto& top = row_ids[static_cast<std::size_t>(r)];
      const auto& bottom = row_ids[static_cast<std::size_t>(r) + 1];
      const std::size_t pt =
          std::min<std::size_t>(static_cast<std::size_t>(points[b]),
                                top.size() - 1);
      const std::size_t pb =
          std::min<std::size_t>(static_cast<std::size_t>(points[b]),
                                bottom.size() - 1);
      const Graph::Vertex bridge =
          bridge_ids[static_cast<std::size_t>(r)][static_cast<std::size_t>(b)];
      g.add_edge(top[pt], bridge);
      g.add_edge(bridge, bottom[pb]);
    }
  }
  return g;
}

Graph brooklyn_coupling() { return heavy_hex_lattice(5); }

}  // namespace nck
