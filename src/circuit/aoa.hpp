// Quantum Alternating Operator Ansatz (Hadfield et al.) — the future-work
// direction the paper names in Section IX: replace QAOA's transverse-field
// mixer with *constraint-preserving* custom mixers. For NchooseK's
// ubiquitous one-hot structure (exactly-one constraints over disjoint
// variable groups, as in map coloring and clique cover), the right mixer is
// an XY ring per group: it moves amplitude only within the feasible one-hot
// subspace, so the hard exactly-one constraints can never be violated and
// the cost Hamiltonian only needs the conflict terms.
//
// The circuit is:  per-group W-state preparation (X + Givens chain), then p
// layers of [conflict phase separator; per-group XY ring mixer].
#pragma once

#include "circuit/qaoa.hpp"

namespace nck {

/// Disjoint one-hot variable groups; each group's variables satisfy an
/// exactly-one constraint enforced by the mixer instead of by penalties.
struct OneHotGroups {
  std::vector<std::vector<Qubo::Var>> groups;

  std::size_t num_qubits() const;
  /// Validates disjointness and non-emptiness; throws std::invalid_argument.
  void validate(std::size_t total_qubits) const;
};

/// Builds the AOA circuit: W-state preparation per group, then p layers of
/// conflict-cost phase separation and XY ring mixing.
/// `params` = (gamma_1, beta_1, ..., gamma_p, beta_p).
Circuit build_aoa_circuit(const IsingModel& conflict_cost,
                          const OneHotGroups& groups,
                          const std::vector<double>& params);

/// Runs the AOA pipeline. `conflict_qubo` drives the phase separator (it
/// should exclude the one-hot penalties); `eval_qubo` scores samples (the
/// full compiled problem, so results are comparable with standard QAOA).
/// State-vector only: throws std::invalid_argument beyond
/// options.max_sim_qubits or if the device is too small.
QaoaResult run_aoa(const Qubo& conflict_qubo, const Qubo& eval_qubo,
                   const OneHotGroups& groups, const Graph& coupling,
                   const QaoaOptions& options, Rng& rng);

}  // namespace nck
