// backend::Backend adapter over the QAOA circuit pipeline. Points at the
// caller's CircuitBackendOptions and coupling map (externally owned, so
// Solver::circuit_options() edits take effect on the next solve).
//
// The plan key covers the program, the coupling graph, the compile
// margin, and the QAOA depth p (which fixes the transpiled structure).
// Shots, the optimizer budget, the noise model, the simulation cutoff,
// and the timing model are execute-only and excluded, so degraded
// retries and noise sweeps reuse the cached transpilation.
#pragma once

#include "backend/backend.hpp"
#include "circuit/backend.hpp"

namespace nck::backend {

class CircuitAdapter final : public Backend {
 public:
  /// Both pointees must outlive the adapter and stay externally owned.
  CircuitAdapter(const CircuitBackendOptions* options, const Graph* coupling)
      : options_(options), coupling_(coupling) {}

  BackendKind kind() const noexcept override { return BackendKind::kCircuit; }
  const char* name() const noexcept override { return "circuit"; }
  bool validate(std::string* why) const override;
  AnalysisTarget analysis_target() const noexcept override;
  Fingerprint plan_key(const PrepareContext& ctx) const override;
  PrepareOutcome prepare(const PrepareContext& ctx) const override;
  ExecutionResult execute(const Plan& plan, ExecuteContext& ctx) const override;
  Budget initial_budget(const SampleFloors& floors) const noexcept override;
  double estimate_attempt_ms(const Budget& budget) const noexcept override;
  bool degrade(Budget& budget) const noexcept override;

 private:
  const CircuitBackendOptions* options_;
  const Graph* coupling_;
};

}  // namespace nck::backend
