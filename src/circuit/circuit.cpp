#include "circuit/circuit.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace nck {

const char* gate_name(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::kH: return "h";
    case GateKind::kX: return "x";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kRZZ: return "rzz";
    case GateKind::kXY: return "xy";
    case GateKind::kSwap: return "swap";
  }
  return "?";
}

void Circuit::push(Gate g) {
  if (g.q0 >= num_qubits_ || (g.two_qubit() && g.q1 >= num_qubits_)) {
    throw std::out_of_range("Circuit: qubit index out of range");
  }
  if (g.two_qubit() && g.q0 == g.q1) {
    throw std::invalid_argument("Circuit: two-qubit gate needs distinct qubits");
  }
  gates_.push_back(g);
}

std::size_t Circuit::num_two_qubit_gates() const noexcept {
  std::size_t n = 0;
  for (const Gate& g : gates_) {
    if (g.two_qubit()) ++n;
  }
  return n;
}

std::size_t Circuit::depth() const {
  std::vector<std::size_t> timeline(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Gate& g : gates_) {
    std::size_t t = timeline[g.q0];
    if (g.two_qubit()) t = std::max(t, timeline[g.q1]);
    ++t;
    timeline[g.q0] = t;
    if (g.two_qubit()) timeline[g.q1] = t;
    depth = std::max(depth, t);
  }
  return depth;
}

void Circuit::run(StateVector& state) const {
  if (state.num_qubits() < num_qubits_) {
    throw std::invalid_argument("Circuit::run: state too small");
  }
  for (const Gate& g : gates_) {
    switch (g.kind) {
      case GateKind::kH: state.h(g.q0); break;
      case GateKind::kX: state.x(g.q0); break;
      case GateKind::kRX: state.rx(g.q0, g.angle); break;
      case GateKind::kRY: state.ry(g.q0, g.angle); break;
      case GateKind::kRZ: state.rz(g.q0, g.angle); break;
      case GateKind::kCX: state.cx(g.q0, g.q1); break;
      case GateKind::kCZ: state.cz(g.q0, g.q1); break;
      case GateKind::kRZZ: state.rzz(g.q0, g.q1, g.angle); break;
      case GateKind::kXY: state.xy(g.q0, g.q1, g.angle); break;
      case GateKind::kSwap: state.swap(g.q0, g.q1); break;
    }
  }
}

std::string Circuit::to_string() const {
  std::ostringstream os;
  for (const Gate& g : gates_) {
    os << gate_name(g.kind) << " q" << g.q0;
    if (g.two_qubit()) os << ", q" << g.q1;
    if (g.kind == GateKind::kRX || g.kind == GateKind::kRY ||
        g.kind == GateKind::kRZ || g.kind == GateKind::kRZZ ||
        g.kind == GateKind::kXY) {
      os << " (" << g.angle << ")";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace nck
