#include "fuzz/differential.hpp"

#include <map>
#include <memory>
#include <sstream>

#include "analysis/certify.hpp"
#include "runtime/solver.hpp"
#include "synth/builtin.hpp"
#include "synth/lp_synth.hpp"
#include "synth/pattern.hpp"
#if NCK_HAVE_Z3
#include "synth/z3_synth.hpp"
#endif

namespace nck::fuzz {
namespace {

/// FailureKinds a healthy pipeline may legitimately report for a small
/// generated program: typed rejections, capacity limits, and the empty
/// sample set. Anything else (kBadOptions on sane options, fault-injection
/// kinds with no injector armed, ...) is a divergence.
bool expected_failure(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kAnalysisRejected:
    case FailureKind::kInfeasible:
    case FailureKind::kNoEmbedding:
    case FailureKind::kDeviceTooSmall:
    case FailureKind::kNoSamples:
      return true;
    default:
      return false;
  }
}

void check_one_synthesis(const ConstraintPattern& pattern,
                         ConstraintSynthesizer& synth,
                         const DifferentialOptions& options,
                         DifferentialReport& report) {
  std::optional<SynthesizedQubo> result;
  try {
    result = synth.synthesize(pattern);
  } catch (const std::exception& e) {
    report.divergences.push_back("synth " + synth.name() + " threw on " +
                                 pattern.key() + ": " + e.what());
    return;
  }
  if (!result) return;  // budget-inadmissible: not an error
  ++report.syntheses_checked;
  if (options.synth_mutator) options.synth_mutator(*result);
  const ConstraintCertificate cert = certify_synthesis(pattern, *result);
  if (!cert.ok) {
    report.divergences.push_back("synth " + synth.name() + " on " +
                                 pattern.key() +
                                 " failed certification: " + cert.error);
  }
}

void run_synthesis_oracle(const Env& env, const DifferentialOptions& options,
                          DifferentialReport& report) {
  // Engines are constructed once per run: Z3 keeps an incremental context,
  // and the oracle's cost is dominated by certification enumeration anyway.
  BuiltinSynthesizer builtin;
  LpSynthesizer lp;
#if NCK_HAVE_Z3
  Z3Synthesizer z3;
#endif
  std::map<std::string, ConstraintPattern> patterns;
  for (const Constraint& c : env.constraints()) {
    ConstraintPattern p = c.pattern();
    patterns.emplace(p.key(), std::move(p));
  }
  for (const auto& [key, pattern] : patterns) {
    ++report.patterns_checked;
    check_one_synthesis(pattern, builtin, options, report);
    check_one_synthesis(pattern, lp, options, report);
#if NCK_HAVE_Z3
    check_one_synthesis(pattern, z3, options, report);
#endif
  }
}

void check_backend_report(const Env& env, BackendKind backend,
                          const SolveReport& solved, const GroundTruth& truth,
                          DifferentialReport& report) {
  const std::string who = std::string(backend_name(backend)) + ": ";
  if (!solved.ran) {
    if (!expected_failure(solved.failure)) {
      report.divergences.push_back(who + "unexpected failure kind '" +
                                   failure_kind_name(solved.failure) + "': " +
                                   solved.failure_message());
    }
    if (solved.failure == FailureKind::kInfeasible && truth.feasible) {
      report.divergences.push_back(
          who + "reported infeasible but brute force found a feasible "
                "assignment");
    }
    if (backend == BackendKind::kClassical && !truth.feasible &&
        solved.failure != FailureKind::kInfeasible &&
        solved.failure != FailureKind::kAnalysisRejected) {
      report.divergences.push_back(
          who + "program is infeasible but the failure was '" +
          std::string(failure_kind_name(solved.failure)) + "'");
    }
    return;
  }
  if (!truth.feasible) {
    report.divergences.push_back(
        who + "produced samples for a brute-force-infeasible program");
    return;
  }
  if (solved.truth_exact &&
      (solved.truth.feasible != truth.feasible ||
       solved.truth.best_soft_satisfied != truth.best_soft_satisfied)) {
    std::ostringstream os;
    os << who << "solver truth (feasible=" << solved.truth.feasible
       << ", best_soft=" << solved.truth.best_soft_satisfied
       << ") != brute force (feasible=" << truth.feasible
       << ", best_soft=" << truth.best_soft_satisfied << ")";
    report.divergences.push_back(os.str());
  }
  if (solved.best_assignment.size() != env.num_vars()) {
    std::ostringstream os;
    os << who << "best assignment has " << solved.best_assignment.size()
       << " variables, program has " << env.num_vars();
    report.divergences.push_back(os.str());
    return;
  }
  const Evaluation eval = env.evaluate(solved.best_assignment);
  if (eval.feasible() && eval.soft_satisfied > truth.best_soft_satisfied) {
    std::ostringstream os;
    os << who << "sample satisfies " << eval.soft_satisfied
       << " softs, brute-forced optimum is " << truth.best_soft_satisfied;
    report.divergences.push_back(os.str());
  }
  if (classify(eval, truth) != solved.best_quality) {
    report.divergences.push_back(
        who + "reported quality '" + quality_name(solved.best_quality) +
        "' but the best assignment re-classifies as '" +
        quality_name(classify(eval, truth)) + "' against brute-forced truth");
  }
  if (backend == BackendKind::kClassical &&
      solved.best_quality != Quality::kOptimal) {
    report.divergences.push_back(
        who + "exact classical solve returned a non-optimal result ('" +
        quality_name(solved.best_quality) + "')");
  }
}

void run_backend_oracle(const Env& env, const DifferentialOptions& options,
                        DifferentialReport& report) {
  const GroundTruth truth = brute_force_truth(env);
  bool classical_rejected_analysis = false;
  bool others_ran = false;
  for (const BackendKind backend :
       {BackendKind::kClassical, BackendKind::kAnnealer,
        BackendKind::kCircuit}) {
    Solver solver(options.solver_seed);
    solver.annealer_options().sampler.num_reads = options.anneal_reads;
    solver.circuit_options().qaoa.shots = options.circuit_shots;
    const SolveReport solved = solver.solve(env, backend);
    ++report.backends_checked;
    check_backend_report(env, backend, solved, truth, report);
    if (backend == BackendKind::kClassical) {
      classical_rejected_analysis =
          !solved.ran && solved.failure == FailureKind::kAnalysisRejected;
    } else if (solved.ran) {
      others_ran = true;
    }
  }
  // Program-level analysis errors are backend-agnostic: if the classical
  // path (which has no embedding or device prechecks) rejected, a
  // hardware-targeting backend accepting the same program means the two
  // analysis passes disagree about the program itself.
  if (classical_rejected_analysis && others_ran) {
    report.divergences.emplace_back(
        "classical rejected the program at analysis but another backend "
        "solved it");
  }
}

}  // namespace

std::string DifferentialReport::to_string() const {
  std::ostringstream os;
  for (const std::string& d : divergences) os << d << '\n';
  return os.str();
}

GroundTruth brute_force_truth(const Env& env) {
  const std::size_t n = env.num_vars();
  if (n > 20) {
    throw std::invalid_argument("brute_force_truth: too many variables (" +
                                std::to_string(n) + ")");
  }
  GroundTruth truth;
  std::vector<bool> assignment(n, false);
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t bits = 0; bits < limit; ++bits) {
    for (std::size_t i = 0; i < n; ++i) {
      assignment[i] = ((bits >> i) & 1u) != 0;
    }
    const Evaluation eval = env.evaluate(assignment);
    if (!eval.feasible()) continue;
    if (!truth.feasible || eval.soft_satisfied > truth.best_soft_satisfied) {
      truth.best_soft_satisfied = eval.soft_satisfied;
    }
    truth.feasible = true;
  }
  return truth;
}

DifferentialReport run_differential(const Env& env,
                                    const DifferentialOptions& options) {
  DifferentialReport report;
  if (options.check_synthesis) {
    run_synthesis_oracle(env, options, report);
  }
  if (options.check_backends && env.num_vars() <= options.max_truth_vars) {
    run_backend_oracle(env, options, report);
  }
  return report;
}

}  // namespace nck::fuzz
