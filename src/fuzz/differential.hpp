// Differential oracles for the fuzzing subsystem (DESIGN.md §3j).
//
// The repo ships three independent constraint synthesizers (builtin
// closed forms, Z3, LP) and three execution backends (classical exact,
// simulated annealer, simulated circuit device) that must agree — the same
// cross-checking discipline the paper applies when validating its
// penalty-QUBO encodings. `run_differential` turns that redundancy into an
// executable oracle over one program:
//
//   Synthesis oracle   every budget-admissible synthesizer's QUBO for every
//                      distinct constraint pattern must pass semantic
//                      certification (analysis/certify): argmin(E) equals
//                      the constraint's satisfying set with the declared
//                      gap. Certification is an equivalence proof, so all
//                      engines provably agree when each certificate holds.
//
//   Backend oracle     the program is brute-forced (Definition 8 truth by
//                      direct enumeration, independent of the solver's own
//                      classical certifier) and then solved on classical /
//                      annealer / circuit. Each backend's reported truth
//                      must equal the brute-forced truth, its best sample
//                      must re-classify to the quality it reported, no
//                      sample may beat the brute-forced soft optimum, the
//                      exact classical backend must return an optimal
//                      sample on every feasible program, and failures must
//                      carry an expected typed FailureKind (kInfeasible if
//                      and only if the program is truly infeasible).
//
// Every violated invariant is recorded as a human-readable divergence; the
// fuzz_differential harness aborts on any. DifferentialOptions::
// synth_mutator is the deliberate-bug hook: tests flip one coefficient of
// a synthesized QUBO through it and assert the oracle trips.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/env.hpp"
#include "runtime/result.hpp"
#include "synth/synthesizer.hpp"

namespace nck::fuzz {

struct DifferentialOptions {
  bool check_synthesis = true;
  bool check_backends = true;
  /// Brute-force enumeration ceiling; programs with more variables skip
  /// the backend oracle (2^n assignments).
  std::size_t max_truth_vars = 16;
  std::uint64_t solver_seed = 1234;
  /// Small sample budgets keep one oracle run in the low milliseconds;
  /// the oracle's invariants are sample-count independent.
  std::size_t anneal_reads = 25;
  std::size_t circuit_shots = 256;
  /// Applied to every synthesized QUBO before certification (test hook
  /// for injecting synthesis bugs the oracle must catch). Never used by
  /// the harnesses themselves.
  std::function<void(SynthesizedQubo&)> synth_mutator;
};

struct DifferentialReport {
  /// Violated invariants, human-readable; empty == all oracles agree.
  std::vector<std::string> divergences;
  std::size_t patterns_checked = 0;   // distinct constraint patterns
  std::size_t syntheses_checked = 0;  // (pattern, engine) certifications
  std::size_t backends_checked = 0;   // backend solves examined

  bool ok() const noexcept { return divergences.empty(); }
  /// Newline-joined divergence list (for the harness's abort message).
  std::string to_string() const;
};

/// Definition 8 ground truth by direct enumeration of all 2^n assignments.
/// Independent of runtime::Solver's classical certifier on purpose: a bug
/// there would otherwise corrupt both sides of the comparison. Requires
/// env.num_vars() <= 20.
GroundTruth brute_force_truth(const Env& env);

/// Runs both oracles over one program. Never throws on a divergence —
/// the report carries them. Programs wider than max_truth_vars run the
/// synthesis oracle only.
DifferentialReport run_differential(const Env& env,
                                    const DifferentialOptions& options = {});

}  // namespace nck::fuzz
