// Structured program generation for the differential fuzz harness.
//
// `generate_program` is a *total* decoder: every byte string (including the
// empty one) maps deterministically to a valid, bounded NchooseK program.
// libFuzzer mutates raw bytes; the decoder turns those bytes into the
// structured choices that matter for the pipeline under test — variable
// counts, collection multiplicities, contiguous vs non-contiguous selection
// sets, hard/soft mixes — so coverage-guided mutation explores *semantic*
// program space instead of fighting the parser's syntax. This is the
// classic structured-fuzzing split: fuzz_parse owns the byte-level syntax
// frontier; fuzz_differential owns the semantic one.
//
// Totality contract (relied on by the harness and the property test):
//   * never throws, never returns an Env that Constraint's validating
//     constructor would reject;
//   * every selection set is non-empty and within the collection
//     cardinality;
//   * exhausted input decodes as zero bytes, so short inputs still yield
//     the smallest valid program (one variable, one constraint).
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/env.hpp"

namespace nck::fuzz {

/// Bounds on generated programs. Defaults keep the brute-force oracle
/// (2^vars enumeration) and the circuit state-vector affordable.
struct GeneratorOptions {
  std::size_t max_vars = 10;         // distinct program variables
  std::size_t max_constraints = 5;   // constraints per program
  std::size_t max_collection = 8;    // collection cardinality (with repeats)
  std::size_t max_multiplicity = 3;  // per-variable repetition
  bool allow_soft = true;            // mix soft constraints in
  bool allow_noncontiguous = true;   // non-interval selection sets
};

/// Reads little decisions off a byte string; zero once exhausted.
class ByteDecoder {
 public:
  ByteDecoder(const std::uint8_t* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  std::uint8_t next() noexcept {
    return pos_ < size_ ? data_[pos_++] : std::uint8_t{0};
  }

  /// Uniform-ish draw in [lo, hi] (inclusive); lo when the range is empty.
  std::size_t range(std::size_t lo, std::size_t hi) noexcept {
    if (hi <= lo) return lo;
    const std::size_t span = hi - lo + 1;
    const std::size_t word = (static_cast<std::size_t>(next()) << 8) |
                            static_cast<std::size_t>(next());
    return lo + word % span;
  }

  std::size_t consumed() const noexcept { return pos_ < size_ ? pos_ : size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Decodes `data` into a valid bounded program. Variables are created on
/// first mention and named v0..vN, so the Env round-trips bytewise through
/// to_string() -> parse_program() (the property test pins this).
Env generate_program(const std::uint8_t* data, std::size_t size,
                     const GeneratorOptions& options = {});

}  // namespace nck::fuzz
