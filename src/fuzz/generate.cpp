#include "fuzz/generate.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace nck::fuzz {
namespace {

/// One constraint's collection: distinct variable indices with
/// multiplicities, total cardinality bounded by options.max_collection.
std::vector<VarId> decode_collection(ByteDecoder& in, Env& env,
                                     std::size_t num_vars,
                                     const GeneratorOptions& options) {
  const std::size_t max_distinct =
      std::min(num_vars, std::max<std::size_t>(options.max_collection, 1));
  const std::size_t distinct = in.range(1, max_distinct);
  // Start + stride walk over the variable universe; duplicates collapse,
  // so the realized distinct count may be smaller (still >= 1).
  const std::size_t start = in.range(0, num_vars - 1);
  const std::size_t stride = in.range(1, num_vars);
  std::set<std::size_t> picked;
  for (std::size_t i = 0; i < distinct; ++i) {
    picked.insert((start + i * stride) % num_vars);
  }
  std::vector<VarId> collection;
  std::size_t budget = std::max(options.max_collection, picked.size());
  std::size_t placed = 0;
  for (const std::size_t index : picked) {
    // Reserve one slot for each distinct variable not yet placed, so every
    // picked variable appears at least once within the cardinality budget.
    const std::size_t still_to_place = picked.size() - placed - 1;
    const std::size_t mult_cap =
        std::max<std::size_t>(1, std::min(options.max_multiplicity,
                                          budget - still_to_place));
    const std::size_t mult = in.range(1, mult_cap);
    const VarId v = env.var("v" + std::to_string(index));
    for (std::size_t m = 0; m < mult; ++m) collection.push_back(v);
    budget -= mult;
    ++placed;
  }
  return collection;
}

/// Non-empty selection set over [0, cardinality].
std::set<unsigned> decode_selection(ByteDecoder& in, unsigned cardinality,
                                    const GeneratorOptions& options) {
  std::set<unsigned> selection;
  const bool contiguous =
      !options.allow_noncontiguous || (in.next() & 1u) == 0;
  if (contiguous) {
    const auto lo = static_cast<unsigned>(in.range(0, cardinality));
    const auto hi = static_cast<unsigned>(in.range(lo, cardinality));
    for (unsigned k = lo; k <= hi; ++k) selection.insert(k);
  } else {
    // Two-byte membership mask over the (at most 17) admissible counts.
    const unsigned mask = (static_cast<unsigned>(in.next()) << 8) |
                          static_cast<unsigned>(in.next());
    for (unsigned k = 0; k <= cardinality; ++k) {
      if ((mask >> (k % 16u)) & 1u) selection.insert(k);
    }
  }
  if (selection.empty()) {
    selection.insert(static_cast<unsigned>(in.range(0, cardinality)));
  }
  return selection;
}

}  // namespace

Env generate_program(const std::uint8_t* data, std::size_t size,
                     const GeneratorOptions& options) {
  ByteDecoder in(data, size);
  Env env;
  const std::size_t num_vars =
      in.range(1, std::max<std::size_t>(options.max_vars, 1));
  const std::size_t num_constraints =
      in.range(1, std::max<std::size_t>(options.max_constraints, 1));
  for (std::size_t c = 0; c < num_constraints; ++c) {
    std::vector<VarId> collection =
        decode_collection(in, env, num_vars, options);
    const auto cardinality = static_cast<unsigned>(collection.size());
    std::set<unsigned> selection = decode_selection(in, cardinality, options);
    const ConstraintKind kind = options.allow_soft && in.next() % 3 == 0
                                    ? ConstraintKind::kSoft
                                    : ConstraintKind::kHard;
    env.nck(std::move(collection), std::move(selection), kind);
  }
  return env;
}

}  // namespace nck::fuzz
