#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace nck {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

namespace detail {

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load() || msg.empty()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[nck %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace detail
}  // namespace nck
