// Summary statistics and least-squares fitting used by the evaluation
// harnesses (box-plot rows for Fig 11, polynomial fit for Fig 12).
#pragma once

#include <span>
#include <vector>

namespace nck {

/// Five-number summary plus mean, as printed for box-plot style figures.
struct Summary {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

/// Computes the summary of `values` (copies and sorts internally).
/// Quartiles use linear interpolation. Empty input yields all zeros.
Summary summarize(std::span<const double> values);

/// Least-squares fit of a polynomial of the given degree;
/// returns coefficients c0..c_degree such that y ~= sum c_k x^k.
/// Solved via normal equations with Gaussian elimination and partial
/// pivoting — adequate for the small degrees (<= 4) used here.
std::vector<double> polyfit(std::span<const double> x,
                            std::span<const double> y, int degree);

/// Evaluates a polynomial (coefficients low-order first) at x.
double polyval(std::span<const double> coeffs, double x);

/// Coefficient of determination (R^2) of a fit over the given data.
double r_squared(std::span<const double> x, std::span<const double> y,
                 std::span<const double> coeffs);

}  // namespace nck
