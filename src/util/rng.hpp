// Deterministic, fast pseudo-random number generation for the whole library.
//
// All stochastic components (annealing sweeps, noise injection, instance
// generators, shot sampling) take an explicit `Rng&` so experiments are
// reproducible from a single seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace nck {

/// Schedule-independent derived stream seed: a splitmix64 finalizer over a
/// base seed and up to two indices. This is the one place the library's
/// determinism idiom lives: a family of workers shares one `base` (identical
/// device calibration, identical plan keys) and each unit of work draws its
/// sample stream from `stream_seed(base, i, j)`, so results never depend on
/// which thread claimed the work or how many threads exist. Used by
/// SolverPool (per task/candidate), nck_serve (per admission serial), and
/// the decomposer (per round/subproblem).
std::uint64_t stream_seed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b = 0) noexcept;

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation, re-expressed in C++). Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64,
  /// so that nearby seeds yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal deviate (Marsaglia polar method).
  double gaussian() noexcept;

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of a whole vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Spawns an independent child stream (used to give each OpenMP worker
  /// its own generator without sharing state).
  Rng split() noexcept;

 private:
  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace nck
