// Aligned-text table and CSV emission. Every benchmark harness prints its
// figure/table series through this so output stays uniform and greppable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nck {

/// Collects rows of stringified cells and renders them either as an aligned
/// monospace table (for terminals) or as CSV (for plotting scripts).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  Table& row();

  Table& cell(const std::string& value);
  Table& cell(const char* value);
  Table& cell(double value, int precision = 3);
  Table& cell(long long value);
  Table& cell(unsigned long long value);
  Table& cell(int value) { return cell(static_cast<long long>(value)); }
  Table& cell(std::size_t value) {
    return cell(static_cast<unsigned long long>(value));
  }

  std::size_t num_rows() const noexcept { return rows_.size(); }

  /// Renders with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our cell contents).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision = 3);

}  // namespace nck
