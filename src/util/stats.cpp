#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nck {
namespace {

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

Summary summarize(std::span<const double> values) {
  Summary s;
  s.n = values.size();
  if (values.empty()) return s;
  std::vector<double> v(values.begin(), values.end());
  std::sort(v.begin(), v.end());
  s.min = v.front();
  s.max = v.back();
  s.q1 = quantile(v, 0.25);
  s.median = quantile(v, 0.5);
  s.q3 = quantile(v, 0.75);
  double sum = 0.0;
  for (double x : v) sum += x;
  s.mean = sum / static_cast<double>(v.size());
  double ss = 0.0;
  for (double x : v) ss += (x - s.mean) * (x - s.mean);
  s.stddev = v.size() > 1 ? std::sqrt(ss / static_cast<double>(v.size() - 1)) : 0.0;
  return s;
}

std::vector<double> polyfit(std::span<const double> x,
                            std::span<const double> y, int degree) {
  if (x.size() != y.size()) throw std::invalid_argument("polyfit: size mismatch");
  if (degree < 0) throw std::invalid_argument("polyfit: negative degree");
  const int m = degree + 1;
  if (x.size() < static_cast<std::size_t>(m)) {
    throw std::invalid_argument("polyfit: not enough points");
  }
  // Normal equations A c = b with A[i][j] = sum x^(i+j), b[i] = sum y x^i.
  std::vector<double> pow_sums(2 * m - 1, 0.0);
  std::vector<double> b(m, 0.0);
  for (std::size_t k = 0; k < x.size(); ++k) {
    double p = 1.0;
    for (int i = 0; i < 2 * m - 1; ++i) {
      pow_sums[i] += p;
      if (i < m) b[i] += y[k] * p;
      p *= x[k];
    }
  }
  std::vector<std::vector<double>> a(m, std::vector<double>(m));
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j) a[i][j] = pow_sums[i + j];

  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < m; ++col) {
    int pivot = col;
    for (int r = col + 1; r < m; ++r)
      if (std::abs(a[r][col]) > std::abs(a[pivot][col])) pivot = r;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    if (std::abs(a[col][col]) < 1e-12) {
      throw std::runtime_error("polyfit: singular normal matrix");
    }
    for (int r = col + 1; r < m; ++r) {
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < m; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> coeffs(m);
  for (int r = m - 1; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < m; ++c) acc -= a[r][c] * coeffs[c];
    coeffs[r] = acc / a[r][r];
  }
  return coeffs;
}

double polyval(std::span<const double> coeffs, double x) {
  double acc = 0.0;
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

double r_squared(std::span<const double> x, std::span<const double> y,
                 std::span<const double> coeffs) {
  if (x.size() != y.size() || y.empty()) return 0.0;
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_tot = 0.0, ss_res = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double fit = polyval(coeffs, x[i]);
    ss_res += (y[i] - fit) * (y[i] - fit);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  if (ss_tot == 0.0) return 1.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace nck
