// Wall-clock timing helpers used by the benchmark harnesses.
#pragma once

#include <chrono>

namespace nck {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }
  double microseconds() const noexcept { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nck
