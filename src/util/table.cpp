#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace nck {

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }

Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}

Table& Table::cell(long long value) { return cell(std::to_string(value)); }

Table& Table::cell(unsigned long long value) {
  return cell(std::to_string(value));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : std::string();
      os << v;
      if (c + 1 < widths.size()) os << std::string(widths[c] - v.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace nck
