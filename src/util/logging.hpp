// Minimal leveled logger. Libraries log sparingly (warnings about fallbacks,
// embedding retries, optimizer non-convergence); benchmarks raise the level
// to keep their table output clean.
#pragma once

#include <sstream>
#include <string>

namespace nck {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {
void log_message(LogLevel level, const std::string& msg);
}

/// Stream-style one-shot log statement: Log(LogLevel::kWarn) << "...";
class Log {
 public:
  explicit Log(LogLevel level) noexcept : level_(level) {}
  ~Log() { detail::log_message(level_, out_.str()); }

  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  template <typename T>
  Log& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace nck
