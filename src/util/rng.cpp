#include "util/rng.hpp"

#include <cmath>

namespace nck {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t stream_seed(std::uint64_t base, std::uint64_t a,
                          std::uint64_t b) noexcept {
  std::uint64_t z = base ^ (0x9E3779B97F4A7C15ull * (a + 1)) ^
                    (0xBF58476D1CE4E5B9ull * (b + 1));
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t x = seed;
  for (auto& w : s_) w = splitmix64(x);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless bounded generation; the slight modulo bias
  // of the simple fallback is irrelevant for n far below 2^64, but we keep
  // the rejection loop for exactness.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::gaussian() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * f;
  has_spare_ = true;
  return u * f;
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() noexcept {
  return Rng((*this)() ^ 0xA0761D6478BD642Full);
}

}  // namespace nck
