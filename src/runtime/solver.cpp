#include "runtime/solver.hpp"

#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "classical/exact_solver.hpp"

namespace nck {

const char* backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kClassical: return "classical";
    case BackendKind::kAnnealer: return "annealer";
    case BackendKind::kCircuit: return "circuit";
  }
  return "?";
}

Solver::Solver(std::uint64_t seed)
    : rng_(seed), coupling_(brooklyn_coupling()) {
  Rng device_rng(seed ^ 0xD3071CEull);
  device_ = advantage_4_1(device_rng);
}

SolveReport Solver::solve(const Env& env, BackendKind backend) {
  SolveReport report;
  report.backend = backend;
  obs::Trace trace;
  solve_impl(env, backend, report, trace);
  report.trace = trace.snapshot();
  return report;
}

void Solver::solve_impl(const Env& env, BackendKind backend,
                        SolveReport& report, obs::Trace& trace) {
  obs::Span solve_span(trace, "solve");

  // Static analysis runs before any backend (or even ground-truth) work:
  // error diagnostics are sound proofs that the solve cannot succeed.
  {
    obs::Span analyze_span(trace, "analyze");
    AnalysisTarget target;
    if (backend == BackendKind::kAnnealer) target.annealer = &device_;
    if (backend == BackendKind::kCircuit) target.coupling = &coupling_;
    report.analysis = analyzer_.analyze(env, engine_, target);
  }
  if (report.analysis.has_errors()) {
    report.failure =
        "static analysis rejected the program: " + report.analysis.summary();
    return;
  }

  {
    obs::Span truth_span(trace, "ground_truth");
    report.truth = ground_truth(env);
  }
  if (!report.truth.feasible) {
    report.failure = "program is infeasible (hard constraints conflict)";
    return;
  }

  switch (backend) {
    case BackendKind::kClassical: {
      obs::Span span(trace, "classical");
      const ClassicalSolution solution = solve_exact(env);
      report.ran = true;
      report.best_assignment = solution.assignment;
      const Evaluation eval = env.evaluate(solution.assignment);
      report.best_quality = classify(eval, report.truth);
      report.counts = classify_all({eval}, report.truth);
      report.num_samples = 1;
      break;
    }
    case BackendKind::kAnnealer: {
      obs::Span span(trace, "anneal");
      const AnnealOutcome outcome =
          run_annealer(env, device_, engine_, rng_, anneal_options_, &trace);
      if (!outcome.embedded) {
        report.failure = "no minor embedding found on the device";
        return;
      }
      if (outcome.samples.empty()) {
        report.failure = "annealer returned no samples (num_reads == 0?)";
        return;
      }
      report.ran = true;
      report.qubits_used = outcome.qubits_used;
      report.num_samples = outcome.samples.size();
      report.counts = classify_all(outcome.evaluations, report.truth);
      report.backend_seconds = outcome.timing.total_us * 1e-6;
      // Best sample: first optimal, else first suboptimal, else first.
      std::size_t best_idx = 0;
      Quality best = Quality::kIncorrect;
      for (std::size_t i = 0; i < outcome.evaluations.size(); ++i) {
        const Quality q = classify(outcome.evaluations[i], report.truth);
        if (q == Quality::kOptimal) {
          best_idx = i;
          best = q;
          break;
        }
        if (q == Quality::kSuboptimal && best == Quality::kIncorrect) {
          best_idx = i;
          best = q;
        }
      }
      report.best_assignment = outcome.samples[best_idx];
      report.best_quality = best;
      break;
    }
    case BackendKind::kCircuit: {
      obs::Span span(trace, "circuit");
      const CircuitOutcome outcome = run_circuit_backend(
          env, coupling_, engine_, rng_, circuit_options_, &trace);
      if (!outcome.fits) {
        report.failure = "problem does not fit the 65-qubit device";
        return;
      }
      if (outcome.samples.empty()) {
        report.failure = "circuit backend returned no samples (shots == 0?)";
        return;
      }
      report.ran = true;
      report.qubits_used = outcome.qubits_used;
      report.circuit_depth = outcome.depth;
      report.num_samples = outcome.samples.size();
      report.counts = classify_all(outcome.evaluations, report.truth);
      report.backend_seconds = outcome.total_seconds;
      // QAOA reports a single answer: the lowest-energy sample.
      report.best_assignment = outcome.samples.front();
      report.best_quality =
          classify(outcome.evaluations.front(), report.truth);
      break;
    }
  }
}

}  // namespace nck
