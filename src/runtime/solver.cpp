#include "runtime/solver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "runtime/backends.hpp"
#include "runtime/pool.hpp"
#include "util/timer.hpp"

namespace nck {
namespace {

void fail(SolveReport& report, FailureKind kind, std::string detail) {
  report.failure = kind;
  report.failure_detail = std::move(detail);
}

/// Folds one successful execute() into the report. single_answer backends
/// (classical witness, circuit lowest-energy sample) report their front
/// sample; sampling backends report the first optimal sample, else the
/// first suboptimal, else the first (annealer reads are ordered by
/// ascending logical energy).
///
/// With `deferred_truth` the report carries no exact ground truth: the best
/// sample is selected by direct Definition 6 comparison (fewest violated
/// hards, then most satisfied softs, earliest wins) and *becomes* the
/// truth reference, so the batch classifies against the solve's own best.
void fill_report(SolveReport& report, const backend::ExecutionResult& res,
                 bool deferred_truth) {
  report.ran = true;
  report.qubits_used = res.qubits_used;
  report.circuit_depth = res.circuit_depth;
  report.num_samples = res.samples.size();
  report.backend_seconds = res.device_seconds;
  std::size_t best_idx = 0;
  if (deferred_truth) {
    if (!res.single_answer) {
      for (std::size_t i = 1; i < res.evaluations.size(); ++i) {
        if (decompose::improves(res.evaluations[i],
                                res.evaluations[best_idx])) {
          best_idx = i;
        }
      }
    }
    const Evaluation& best_eval = res.evaluations[best_idx];
    report.truth = {best_eval.feasible(), best_eval.soft_satisfied};
    report.truth_exact = false;
    report.counts = classify_all(res.evaluations, report.truth);
    report.best_assignment = res.samples[best_idx];
    report.best_quality = classify(best_eval, report.truth);
    return;
  }
  report.counts = classify_all(res.evaluations, report.truth);
  Quality best = Quality::kIncorrect;
  if (res.single_answer) {
    best = classify(res.evaluations.front(), report.truth);
  } else {
    for (std::size_t i = 0; i < res.evaluations.size(); ++i) {
      const Quality q = classify(res.evaluations[i], report.truth);
      if (q == Quality::kOptimal) {
        best_idx = i;
        best = q;
        break;
      }
      if (q == Quality::kSuboptimal && best == Quality::kIncorrect) {
        best_idx = i;
        best = q;
      }
    }
  }
  report.best_assignment = res.samples[best_idx];
  report.best_quality = best;
}

/// Ground truth is deterministic in the program alone, so it lives in the
/// content-addressed cache next to the backend plans: a batch of repeated
/// (or renamed-isomorphic) programs certifies once.
struct TruthPlan final : backend::Plan {
  GroundTruth truth;
  std::size_t bytes() const noexcept override { return sizeof(TruthPlan); }
};

/// Certificates are deterministic in the program plus the certification
/// thresholds, so they share the content-addressed cache: a warm solve
/// recalls the artifact and re-derives the NCK-V* diagnostics by pure
/// arithmetic, enumerating zero assignments.
struct CertificatePlan final : backend::Plan {
  ProgramCertificate certificate;
  std::size_t bytes() const noexcept override {
    return sizeof(CertificatePlan) +
           certificate.constraints.size() * sizeof(ConstraintCertificate);
  }
};

backend::Fingerprint certificate_key(const Env& env,
                                     const CertifyOptions& options) {
  backend::Fingerprint key;
  key.mix(std::string("certificate"));
  key.mix(options.eps);
  key.mix(options.hard_margin);
  key.mix(static_cast<std::uint64_t>(options.max_enum_vars));
  backend::mix_env(key, env);
  return key;
}

/// Presolve reductions are deterministic in the program plus the reduce
/// options, so the reduced program, its trace, and its equivalence verdict
/// live in the content-addressed cache: warm solves (and permuted-but-
/// identical programs, thanks to the canonical mix_env) skip the dataflow
/// fixpoint and the 2^n verification entirely.
struct PresolvePlan final : backend::Plan {
  ReduceResult result;
  ReductionVerdict verdict;
  std::size_t bytes() const noexcept override {
    return sizeof(PresolvePlan) +
           result.steps.size() * sizeof(ReductionStep) +
           result.trace.forced.size() + result.trace.kept.size() * sizeof(VarId);
  }
};

backend::Fingerprint presolve_key(const Env& env, const ReduceOptions& options) {
  backend::Fingerprint key;
  key.mix(std::string("presolve"));
  key.mix(static_cast<std::uint64_t>(options.verify_max_vars));
  key.mix(options.dataflow.mine_pairs);
  key.mix(static_cast<std::uint64_t>(options.dataflow.max_propagation_cardinality));
  key.mix(static_cast<std::uint64_t>(options.dataflow.max_pair_vars));
  backend::mix_env(key, env);
  return key;
}

}  // namespace

std::string SolveReport::failure_message() const {
  if (failure == FailureKind::kNone) return "";
  if (!failure_detail.empty()) return failure_detail;
  return failure_kind_description(failure);
}

Solver::Solver(std::uint64_t seed)
    : seed_(seed),
      rng_(seed),
      coupling_(brooklyn_coupling()),
      plan_cache_(std::make_shared<backend::PlanCache>()) {
  Rng device_rng(seed ^ 0xD3071CEull);
  device_ = advantage_4_1(device_rng);
  if (const auto chaos = ResilienceOptions::chaos_from_env()) {
    resilience_ = *chaos;
  }
  register_builtin_backends(registry_, &anneal_options_, &device_,
                            &circuit_options_, &coupling_);
  engine_.set_shared_cache(&plan_cache_->synth_cache());
}

void Solver::set_plan_cache(std::shared_ptr<backend::PlanCache> cache) {
  if (cache == nullptr) return;
  plan_cache_ = std::move(cache);
  engine_.set_shared_cache(&plan_cache_->synth_cache());
}

SolveReport Solver::solve(const Env& env, BackendKind backend) {
  SolveReport report;
  report.backend = backend;
  obs::Trace trace;
  solve_impl(env, backend, report, trace);
  report.trace = trace.snapshot();
  return report;
}

bool Solver::validate_options(const std::vector<BackendKind>& chain,
                              SolveReport& report) const {
  std::string why;
  const auto reject = [&](const std::string& detail) {
    fail(report, FailureKind::kBadOptions, "invalid options: " + detail);
    return false;
  };

  if (resilience_.fallback && resilience_.fallback->empty()) {
    return reject("fallback chain is engaged but empty");
  }
  if (!resilience_.retry.validate(&why)) return reject(why);
  if (std::isnan(solve_options_.wall_budget_ms)) {
    return reject("wall_budget_ms is NaN");
  }
  if (solve_options_.decompose.enabled &&
      solve_options_.decompose.subproblem_vars == 0) {
    return reject("decompose.subproblem_vars must be >= 1");
  }

  for (BackendKind bk : chain) {
    const backend::Backend* be = registry_.find(bk);
    if (be == nullptr) {
      return reject(std::string("no backend registered for ") +
                    backend_name(bk));
    }
    if (!be->validate(&why)) return reject(why);
  }
  return true;
}

/// The staged solve pipeline. Each stage reads and advances this shared
/// state; stages returning bool report "continue" (false means the report
/// is finalized — failed, or answered without dispatch). The ordinary
/// whole-program solve is the pipeline with dispatch_stage as its executor;
/// decompose_stage swaps in the qbsolv-style large-neighborhood loop, and
/// everything before and after (presolve, analysis, certification, truth,
/// lift) is shared between the two.
struct Solver::Stages {
  Solver& s;
  const Env& env;
  const BackendKind primary;
  SolveReport& report;
  obs::Trace& trace;

  // Wall-clock deadline (distinct from the modeled-session deadline in
  // RetryPolicy::deadline_ms; see SolveOptions::wall_budget_ms). Gated at
  // entry, between stages, and before every attempt.
  const Timer wall_clock;
  const double wall_budget;

  /// Primary backend then deduplicated fallback rungs (first wins).
  std::vector<BackendKind> chain;

  /// The program the pipeline operates on: `env`, or the cached reduced
  /// program once presolve changes it.
  const Env* work;
  backend::PlanPtr presolve_plan_ptr;  // owns the reduced Env `work` may alias
  const PresolvePlan* presolve_plan = nullptr;
  bool presolve_rejected = false;

  /// The post-presolve program exceeds the per-subproblem cap and
  /// decomposition is enabled: dispatch is replaced by the LNS loop,
  /// analysis stays program-level, truth goes component-wise.
  bool decomposed = false;
  /// Some interaction component was too large for exact ground truth; the
  /// report's truth is referenced to the final incumbent instead.
  bool truth_deferred = false;

  Stages(Solver& solver, const Env& e, BackendKind b, SolveReport& r,
         obs::Trace& t)
      : s(solver),
        env(e),
        primary(b),
        report(r),
        trace(t),
        wall_budget(solver.solve_options_.wall_budget_ms),
        work(&e) {}

  bool wall_expired() const noexcept {
    return wall_clock.milliseconds() >= wall_budget;
  }

  void fail_wall(const char* stage) {
    report.resilience.deadline_exhausted = true;
    obs::count(&trace, "resilience.wall_deadline_exhausted");
    fail(report, FailureKind::kDeadlineExhausted,
         std::string("wall-clock deadline exhausted ") + stage + " (budget " +
             std::to_string(wall_budget) + " ms)");
  }

  bool begin();
  bool presolve_stage();
  bool analysis_stage();
  bool certify_stage();
  bool truth_stage();
  void dispatch_stage();
  void decompose_stage();
  void lift_stage();
};

bool Solver::Stages::begin() {
  // An already-expired request fails fast without burning any presolve,
  // analysis, or backend work.
  if (wall_budget <= 0.0) {
    fail_wall("before the solve started");
    return false;
  }

  // Chain: the primary backend, then the fallback rungs in order, with
  // every duplicate kind dropped (first occurrence wins). Validation and
  // analysis run over the deduplicated chain, so a rung listed twice is
  // checked — and diagnosed — once.
  chain.push_back(primary);
  if (s.resilience_.fallback) {
    for (BackendKind b : *s.resilience_.fallback) {
      bool seen = false;
      for (BackendKind c : chain) seen = seen || c == b;
      if (!seen) chain.push_back(b);
    }
  }

  return s.validate_options(chain, report);
}

bool Solver::Stages::presolve_stage() {
  // Presolve: run the dataflow fixpoint and the model-preserving reduction
  // catalog before anything else touches the program. On success the whole
  // pipeline below — analysis, certification, ground truth, backend plan
  // keys — operates on the reduced program, and samples are lifted back to
  // original space at the end. Three non-identity outcomes:
  //   reduced          `work` switches to the cached reduced program;
  //   proved unsat     `work` stays original, so the analysis stage
  //                    rejects it with the usual NCK-P001/P002/D003 story;
  //   rejected         the equivalence check failed (NCK-D004 warning is
  //                    appended after analysis); `work` stays original.
  if (s.solve_options_.presolve) {
    obs::Span presolve_span(trace, "presolve");
    const backend::Fingerprint key =
        presolve_key(env, s.solve_options_.reduce_options);
    if (backend::PlanPtr cached = s.plan_cache_->find(key)) {
      obs::count(&trace, "plan_cache.hit");
      obs::count(&trace, "presolve.cache_hit");
      presolve_plan_ptr = std::move(cached);
    } else {
      obs::count(&trace, "plan_cache.miss");
      obs::count(&trace, "presolve.cache_miss");
      auto plan = std::make_shared<PresolvePlan>();
      plan->result = reduce_program(env, s.solve_options_.reduce_options);
      plan->verdict = verify_reduction(
          env, plan->result, s.solve_options_.reduce_options.verify_max_vars);
      presolve_plan_ptr = std::move(plan);
      s.plan_cache_->insert(key, presolve_plan_ptr);
    }
    presolve_plan = static_cast<const PresolvePlan*>(presolve_plan_ptr.get());
    const ReduceResult& red = presolve_plan->result;
    PresolveSummary summary = summarize_reduction(env, red);
    summary.verified = presolve_plan->verdict.checked &&
                       presolve_plan->verdict.ok;
    summary.rejected = presolve_plan->verdict.checked &&
                       !presolve_plan->verdict.ok;
    presolve_rejected = summary.rejected;
    if (red.changed() || red.proved_unsat || summary.rejected) {
      report.presolve = summary;
    }
    if (!summary.rejected && !red.proved_unsat && red.changed()) {
      work = &red.reduced;
      trace.registry().add("presolve.forced",
                           static_cast<double>(summary.forced));
      trace.registry().add("presolve.removed_constraints",
                           static_cast<double>(summary.removed_constraints));
    }
  }

  // Fully decided program: every variable forced, every constraint removed.
  // The lifted forced assignment is the unique answer consistent with the
  // hard constraints; no backend needs to run.
  if (work != &env && work->num_constraints() == 0) {
    const ReductionTrace& tr = presolve_plan->result.trace;
    report.ran = true;
    report.truth = {true, tr.soft_always_satisfied};
    report.best_assignment =
        tr.lift(std::vector<bool>(work->num_vars(), false));
    report.best_quality = Quality::kOptimal;
    report.num_samples = 1;
    report.counts.optimal = 1;
    obs::count(&trace, "presolve.short_circuit");
    return false;
  }
  return true;
}

bool Solver::Stages::analysis_stage() {
  // Static analysis runs before any backend (or even ground-truth) work:
  // error diagnostics are sound proofs that the solve cannot succeed. In
  // chain mode a rung-specific error is survivable (the solve degrades),
  // so only program-level errors and NCK-R000 abort. In decomposed mode
  // the whole program never reaches a device, so only the program-level
  // passes run here (a >cap program would otherwise draw a fatal NCK-Q002
  // / NCK-C001); the hardware passes run per sub-QUBO inside each
  // sub-solve.
  // While certifying, the heuristic NCK-P007 scale-separation pass yields
  // to its sound NCK-V001/V002 successors (restored after the analyze run).
  const bool saved_scale_separation =
      s.analyzer_.options().program.scale_separation;
  if (s.solve_options_.certify) {
    s.analyzer_.options().program.scale_separation = false;
  }
  {
    obs::Span analyze_span(trace, "analyze");
    if (decomposed) {
      report.analysis = s.analyzer_.analyze(*work);
    } else if (chain.size() > 1) {
      std::vector<AnalysisTarget> targets;
      targets.reserve(chain.size());
      for (BackendKind b : chain) {
        targets.push_back(s.registry_.find(b)->analysis_target());
      }
      report.analysis = s.analyzer_.analyze_chain(*work, s.engine_, targets);
    } else {
      report.analysis = s.analyzer_.analyze(
          *work, s.engine_, s.registry_.find(primary)->analysis_target());
    }
  }
  s.analyzer_.options().program.scale_separation = saved_scale_separation;
  if (decomposed) {
    report.analysis.add(
        {Severity::kNote, DiagCode::kDecomposed, DiagLocation::program(),
         "program exceeds the per-subproblem cap (" +
             std::to_string(work->num_vars()) + " > " +
             std::to_string(s.solve_options_.decompose.subproblem_vars) +
             " variables); solving by qbsolv-style decomposition",
         "hardware-level diagnostics are reported per sub-QUBO inside each "
         "sub-solve; see SolveReport::decompose for the round story"});
  }
  if (presolve_rejected) {
    report.analysis.add(
        {Severity::kWarning, DiagCode::kReductionRejected,
         DiagLocation::program(),
         "presolve produced a reduction that failed equivalence "
         "certification; solving the original program (" +
             presolve_plan->verdict.detail + ")",
         "this indicates a reduction-catalog bug; `nck_cli simplify` on "
         "this program reproduces it"});
  }
  if (decomposed || presolve_rejected) report.analysis.canonicalize();
  if (report.analysis.has_errors()) {
    fail(report, FailureKind::kAnalysisRejected,
         "static analysis rejected the program: " + report.analysis.summary());
    return false;
  }
  return true;
}

bool Solver::Stages::certify_stage() {
  if (!s.solve_options_.certify) return true;
  obs::Span certify_span(trace, "certify");
  const backend::Fingerprint key =
      certificate_key(*work, s.solve_options_.certify_options);
  ProgramCertificate cert;
  if (const backend::PlanPtr cached = s.plan_cache_->find(key)) {
    obs::count(&trace, "plan_cache.hit");
    obs::count(&trace, "certify.cache_hits");
    cert = static_cast<const CertificatePlan&>(*cached).certificate;
  } else {
    obs::count(&trace, "plan_cache.miss");
    cert = certify_program(*work, s.engine_, s.solve_options_.certify_options);
    // Enumeration happens only on this cold path; the warm-solve test
    // asserts this counter stays flat.
    trace.registry().add("certify.constraints_enumerated",
                         static_cast<double>(cert.constraints.size()));
    auto plan = std::make_shared<CertificatePlan>();
    plan->certificate = cert;
    s.plan_cache_->insert(key, std::move(plan));
  }
  report_certificate(*work, cert, s.solve_options_.certify_options,
                     report.analysis);
  report.certificate = std::move(cert);
  if (report.analysis.has_errors()) {
    fail(report, FailureKind::kAnalysisRejected,
         "certification rejected the program: " + report.analysis.summary());
    return false;
  }
  return true;
}

bool Solver::Stages::truth_stage() {
  {
    obs::Span truth_span(trace, "ground_truth");
    if (!decomposed &&
        work->num_vars() > s.solve_options_.truth_exact_max_vars) {
      // Past the exact-truth ceiling: skip the exponential certifier and
      // let dispatch reference truth to its own best sample.
      truth_deferred = true;
      obs::count(&trace, "truth.deferred");
    } else if (!decomposed) {
      backend::Fingerprint truth_key;
      truth_key.mix(std::string("truth"));
      backend::mix_env(truth_key, *work);
      if (const backend::PlanPtr cached = s.plan_cache_->find(truth_key)) {
        obs::count(&trace, "plan_cache.hit");
        report.truth = static_cast<const TruthPlan&>(*cached).truth;
      } else {
        obs::count(&trace, "plan_cache.miss");
        report.truth = ground_truth(*work);
        auto plan = std::make_shared<TruthPlan>();
        plan->truth = report.truth;
        s.plan_cache_->insert(truth_key, std::move(plan));
      }
    } else {
      // A >cap program is exactly what the exact solver chokes on, but its
      // interaction components are independent: truth factorizes into a
      // per-component sum (each cached content-addressed, so a repeated
      // block pattern certifies once). Only when some single component is
      // itself too large does the report fall back to incumbent-referenced
      // truth (truth_exact == false in the summary).
      const ComponentSplit split = split_components(*work);
      bool all_small = true;
      for (const Env& component : split.programs) {
        all_small = all_small &&
                    component.num_vars() <=
                        s.solve_options_.decompose.truth_component_vars;
      }
      if (!all_small) {
        truth_deferred = true;
        obs::count(&trace, "decompose.truth_deferred");
      } else {
        GroundTruth total{true, 0};
        for (const Env& component : split.programs) {
          backend::Fingerprint truth_key;
          truth_key.mix(std::string("truth"));
          backend::mix_env(truth_key, component);
          GroundTruth part;
          if (const backend::PlanPtr cached = s.plan_cache_->find(truth_key)) {
            obs::count(&trace, "plan_cache.hit");
            part = static_cast<const TruthPlan&>(*cached).truth;
          } else {
            obs::count(&trace, "plan_cache.miss");
            part = ground_truth(component);
            auto plan = std::make_shared<TruthPlan>();
            plan->truth = part;
            s.plan_cache_->insert(truth_key, std::move(plan));
          }
          total.feasible = total.feasible && part.feasible;
          total.best_soft_satisfied += part.best_soft_satisfied;
        }
        report.truth = total;
      }
    }
  }
  if (!truth_deferred && !report.truth.feasible) {
    fail(report, FailureKind::kInfeasible,
         "program is infeasible (hard constraints conflict)");
    return false;
  }
  if (wall_expired()) {
    fail_wall("before dispatch");
    return false;
  }
  return true;
}

void Solver::Stages::dispatch_stage() {
  const bool resilient = s.resilience_.active();
  const RetryPolicy& retry = s.resilience_.retry;
  FaultInjector injector(s.resilience_.faults, s.resilience_.fault_seed);
  // Backoff jitter draws from its own stream, never from the solve's
  // sample stream, so a solve preceded by rejected attempts samples
  // exactly like a clean solve.
  Rng backoff_rng(s.resilience_.fault_seed ^ 0xB0FFull);
  SessionClock clock;
  ResilienceLog& log = report.resilience;

  const backend::SampleFloors floors{s.resilience_.min_reads,
                                     s.resilience_.min_shots};

  // Dead-qubit events degrade a per-solve copy of the device, so one
  // stormy session never poisons the next solve's calibration. The
  // degraded topology changes the plan key, which forces the re-embed
  // on the next attempt without any backend-specific logic here.
  const Device* active_device = &s.device_;
  Device degraded_device;

  std::size_t attempt = 0;
  FailureKind last_failure = FailureKind::kNone;
  std::string last_detail;
  bool wall_out = false;

  for (std::size_t rung = 0; rung < chain.size() && !wall_out; ++rung) {
    const BackendKind bk = chain[rung];
    const backend::Backend& be = *s.registry_.find(bk);
    if (rung > 0) {
      ++log.fallbacks;
      obs::count(&trace, "resilience.fallbacks");
    }
    report.backend = bk;

    backend::Budget budget = be.initial_budget(floors);
    std::size_t rung_attempts = 0;

    while (true) {
      // Wall-clock gate first: unlike the modeled deadline below it has no
      // exempt backend — once real time is up, every further attempt is
      // wasted work for a caller that has already timed out.
      if (wall_expired()) {
        log.deadline_exhausted = true;
        last_failure = FailureKind::kDeadlineExhausted;
        last_detail = std::string("wall-clock deadline exhausted before a ") +
                      backend_name(bk) + " attempt";
        obs::count(&trace, "resilience.wall_deadline_exhausted");
        wall_out = true;
        break;
      }

      // Deadline gate + degradation ladder. Deadline-exempt backends (the
      // classical rung) are the guaranteed landing: they cost no modeled
      // device time and exist precisely to land the solve.
      const double remaining = retry.deadline_ms - clock.elapsed_ms();
      if (!be.deadline_exempt() && std::isfinite(retry.deadline_ms)) {
        // Documented steps: shrink the sample budget toward its floors
        // until the modeled attempt cost fits the remaining budget.
        while (be.estimate_attempt_ms(budget) > remaining) {
          if (!be.degrade(budget)) break;
          ++log.degradations;
          obs::count(&trace, "resilience.degradations");
        }
        if (be.estimate_attempt_ms(budget) > remaining) {
          log.deadline_exhausted = true;
          last_failure = FailureKind::kDeadlineExhausted;
          last_detail = std::string("session deadline exhausted before a ") +
                        backend_name(bk) + " attempt could fit";
          obs::count(&trace, "resilience.deadline_exhausted");
          break;  // next rung
        }
      }

      ++attempt;
      ++rung_attempts;
      injector.begin_attempt(attempt);

      AttemptRecord rec;
      rec.attempt = attempt;
      rec.backend = bk;
      rec.samples_requested = budget.samples;

      // Plain solves keep the pre-resilience trace shape (no attempt
      // wrapper); resilient solves nest each backend span under one.
      std::optional<obs::Span> attempt_span;
      if (resilient) {
        attempt_span.emplace(trace, "attempt");
        obs::count(&trace, "resilience.attempts");
      }
      Timer wall;

      FailureKind fk = FailureKind::kNone;
      std::string detail;
      std::vector<std::size_t> dead_qubits;

      {
        obs::Span span(trace, be.name());

        backend::PrepareContext pctx;
        pctx.env = work;
        pctx.engine = &s.engine_;
        pctx.trace = &trace;
        pctx.device = active_device;
        pctx.key = be.plan_key(pctx);

        backend::PlanPtr plan = s.plan_cache_->find(pctx.key);
        if (plan != nullptr) {
          obs::count(&trace, "plan_cache.hit");
        } else {
          obs::count(&trace, "plan_cache.miss");
          backend::PrepareOutcome prep = be.prepare(pctx);
          if (prep.failure != FailureKind::kNone) {
            fk = prep.failure;
            detail = std::move(prep.detail);
          } else {
            plan = std::move(prep.plan);
            s.plan_cache_->insert(pctx.key, plan);
          }
        }

        if (fk == FailureKind::kNone) {
          backend::ExecuteContext ectx;
          ectx.rng = &s.rng_;
          ectx.trace = &trace;
          ectx.faults = injector.armed() ? &injector : nullptr;
          ectx.budget = budget;
          backend::ExecutionResult res = be.execute(*plan, ectx);
          rec.device_ms = res.device_seconds * 1e3;
          if (res.failure != FailureKind::kNone) {
            fk = res.failure;
            detail = std::move(res.detail);
            dead_qubits = std::move(res.dead_qubits);
          } else {
            fill_report(report, res, truth_deferred);
          }
        }
      }

      rec.wall_ms = wall.milliseconds();
      clock.charge_wall_ms(rec.wall_ms);
      clock.charge_device_ms(rec.device_ms);
      const double queue_wait = injector.modeled_wait_ms(attempt);
      if (queue_wait > 0.0) {
        rec.wait_ms += queue_wait;
        clock.charge_wait_ms(queue_wait);
        trace.record_modeled("resilience.queue_wait", queue_wait * 1e3);
      }

      if (fk == FailureKind::kNone) {
        if (resilient) log.attempts.push_back(rec);
        break;  // success: report.ran is set
      }

      rec.failure = fk;
      rec.detail = detail;
      last_failure = fk;
      last_detail = detail;

      const bool can_retry =
          transient_failure(fk) && rung_attempts <= retry.max_retries;
      if (can_retry) {
        if (fk == FailureKind::kDeadQubits) {
          // Degradation ladder, step 1: drop the dead qubits from the
          // working graph; the changed plan key re-embeds next attempt.
          if (active_device != &degraded_device) {
            degraded_device = s.device_;
            active_device = &degraded_device;
          }
          for (std::size_t q : dead_qubits) {
            degraded_device.operable[q] = false;
          }
          ++log.reembeds;
          obs::count(&trace, "resilience.reembeds");
        }
        const double backoff = retry.backoff_ms(rung_attempts, backoff_rng);
        rec.wait_ms += backoff;
        clock.charge_wait_ms(backoff);
        trace.record_modeled("resilience.backoff", backoff * 1e3);
        ++log.retries;
        obs::count(&trace, "resilience.retries");
      }
      log.attempts.push_back(rec);
      if (!can_retry) {
        if (transient_failure(fk) && retry.max_retries > 0 &&
            rung + 1 >= chain.size()) {
          last_failure = FailureKind::kRetriesExhausted;
          last_detail = "retry budget exhausted after " +
                        std::to_string(rung_attempts) + " attempt(s) on " +
                        backend_name(bk) + " (last: " + detail + ")";
        }
        break;  // next rung
      }
    }

    if (report.ran) break;
  }

  log.faults = injector.history();
  log.total_wall_ms = clock.wall_ms();
  log.total_device_ms = clock.device_ms();
  log.total_wait_ms = clock.wait_ms();

  if (!report.ran) fail(report, last_failure, last_detail);
}

void Solver::Stages::decompose_stage() {
  const decompose::DecomposeOptions& opts = s.solve_options_.decompose;
  obs::Span span(trace, "decompose");

  decompose::DecomposeSummary sum;
  sum.num_vars = work->num_vars();
  sum.truth_exact = !truth_deferred;

  // The decomposition seam is cut once; rounds re-clamp against the moving
  // incumbent but never re-partition, so every round's sub-programs with an
  // unchanged boundary key the same cached plans.
  const decompose::Partition partition =
      decompose::plan_partition(*work, opts.subproblem_vars, &s.engine_);
  sum.subproblems = partition.parts.size();
  sum.components = partition.components;
  trace.registry().add("decompose.subproblems",
                       static_cast<double>(sum.subproblems));

  // Sub-solves are plain solves (no nested decomposition — each part is at
  // most `subproblem_vars` already) sharing this solver's plan cache and
  // resilience posture, with the remaining wall budget propagated per
  // round.
  SolveOptions sub_options = s.solve_options_;
  sub_options.decompose.enabled = false;
  // Per-subproblem exact truth is pointless (the stitch re-evaluates every
  // candidate whole-program) and exponential at device size: cap it.
  sub_options.truth_exact_max_vars =
      std::min(sub_options.truth_exact_max_vars, opts.truth_component_vars);

  std::vector<bool> incumbent(work->num_vars(), false);
  Evaluation inc_eval = work->evaluate(incumbent);

  FailureKind first_failure = FailureKind::kNone;
  std::string first_detail;
  bool any_ran = false;
  bool wall_out = false;

  for (std::size_t round = 1; round <= opts.max_rounds; ++round) {
    if (wall_expired()) {
      wall_out = true;
      break;
    }
    obs::Span round_span(trace, "round");
    obs::count(&trace, "decompose.rounds");

    // Clamp every neighborhood's boundary to the current incumbent. The
    // clamped boundary is baked into each sub-program, so the sub-plan
    // fingerprints are automatically keyed by it.
    std::vector<decompose::Subproblem> subs;
    subs.reserve(partition.parts.size());
    std::vector<Env> sub_envs;
    sub_envs.reserve(partition.parts.size());
    for (const std::vector<VarId>& part : partition.parts) {
      subs.push_back(decompose::clamp_to_incumbent(*work, part, incumbent));
      sub_envs.push_back(subs.back().env);
    }

    const backend::PlanCacheStats cache_before = s.plan_cache_->stats();

    // One base seed (the solver's own) for every round keeps sub-solver
    // calibration and plan keys fixed; the round number salts the sample
    // streams so a re-clamped neighborhood is not condemned to resample
    // its previous round verbatim.
    PoolOptions pool_options;
    pool_options.num_threads = opts.num_threads;
    pool_options.seed = s.seed_;
    pool_options.annealer = s.anneal_options_;
    if (opts.polish_subsolves) {
      pool_options.annealer.sampler.postprocess = true;
      // qbsolv-style tabu refinement: sub-QUBOs are device-capped, so a
      // generous move budget is still negligible next to the embed cost.
      pool_options.annealer.sampler.postprocess_tabu_iters = 512;
    }
    pool_options.circuit = s.circuit_options_;
    pool_options.resilience = s.resilience_;
    pool_options.stream_salt = round;
    pool_options.shared_cache = s.plan_cache_;
    if (std::isfinite(wall_budget)) {
      sub_options.wall_budget_ms =
          std::max(0.0, wall_budget - wall_clock.milliseconds());
    }
    pool_options.solve = sub_options;
    SolverPool pool(pool_options);
    const BatchReport batch = pool.solve_all(sub_envs, primary);

    const backend::PlanCacheStats cache_after = s.plan_cache_->stats();

    decompose::RoundStats rs;
    rs.round = round;
    rs.cache_hits = cache_after.hits - cache_before.hits;
    rs.cache_misses = cache_after.misses - cache_before.misses;

    // Stitch: accept each neighborhood's answer, in deterministic part
    // order, iff substituting it into the incumbent strictly improves the
    // whole-program evaluation (fewer violated hards, then more satisfied
    // softs). Strict lexicographic acceptance makes the incumbent sequence
    // monotone, so the loop cannot cycle and always terminates.
    for (std::size_t k = 0; k < batch.reports.size(); ++k) {
      const SolveReport& sub = batch.reports[k];
      if (!sub.ran) {
        if (first_failure == FailureKind::kNone) {
          first_failure = sub.failure;
          first_detail =
              "subproblem " + std::to_string(k) + ": " + sub.failure_message();
        }
        obs::count(&trace, "decompose.sub_failures");
        continue;
      }
      ++rs.subproblems_ran;
      report.backend_seconds += sub.backend_seconds;
      report.qubits_used = std::max(report.qubits_used, sub.qubits_used);
      report.circuit_depth = std::max(report.circuit_depth, sub.circuit_depth);
      report.resilience.retries += sub.resilience.retries;
      report.resilience.reembeds += sub.resilience.reembeds;
      report.resilience.fallbacks += sub.resilience.fallbacks;
      report.resilience.degradations += sub.resilience.degradations;

      std::vector<bool> sub_best = sub.best_assignment;
      if (opts.polish_subsolves) {
        // Program-level tabu refinement of the neighborhood's answer
        // (deterministic; see decompose::polish_assignment for why the
        // QUBO-level polish alone is not enough).
        sub_best = decompose::polish_assignment(subs[k].env,
                                                std::move(sub_best));
      }
      std::vector<bool> candidate = incumbent;
      const std::vector<VarId>& vars = subs[k].vars;
      for (std::size_t i = 0; i < vars.size(); ++i) {
        candidate[vars[i]] = sub_best[i];
      }
      const Evaluation eval = work->evaluate(candidate);
      if (decompose::improves(eval, inc_eval)) {
        incumbent = std::move(candidate);
        inc_eval = eval;
        ++rs.improved;
      }
    }

    any_ran = any_ran || rs.subproblems_ran > 0;
    rs.hard_violated = inc_eval.hard_violated;
    rs.soft_satisfied = inc_eval.soft_satisfied;
    obs::count(&trace, "decompose.subproblems_ran",
               static_cast<double>(rs.subproblems_ran));
    obs::count(&trace, "decompose.improved",
               static_cast<double>(rs.improved));
    sum.rounds = round;
    sum.round_stats.push_back(rs);

    if (rs.subproblems_ran == 0) break;  // every neighborhood failed
    if (rs.improved == 0) {
      sum.converged = true;
      break;
    }
  }

  report.decompose = std::move(sum);

  if (!any_ran) {
    if (wall_out || wall_expired()) {
      fail_wall("during decomposition");
    } else {
      fail(report, first_failure, first_detail);
    }
    return;
  }
  if (wall_out) {
    // Anytime behavior: the deadline cut the loop short, but completed
    // rounds still produced an incumbent worth reporting.
    report.resilience.deadline_exhausted = true;
    obs::count(&trace, "resilience.wall_deadline_exhausted");
  }

  report.ran = true;
  report.backend = primary;
  report.best_assignment = std::move(incumbent);
  report.num_samples = 1;
  if (truth_deferred) {
    // No exact optimum available: reference the truth to the incumbent
    // itself. kOptimal then reads "no device-sized neighborhood improves
    // it" — a local-optimality statement, flagged by truth_exact == false.
    report.truth = {inc_eval.feasible(), inc_eval.soft_satisfied};
    report.truth_exact = false;
  }
  report.best_quality = classify(inc_eval, report.truth);
  switch (report.best_quality) {
    case Quality::kOptimal: report.counts.optimal = 1; break;
    case Quality::kSuboptimal: report.counts.suboptimal = 1; break;
    case Quality::kIncorrect: report.counts.incorrect = 1; break;
  }
}

void Solver::Stages::lift_stage() {
  // Lift the reduced-space result back to original space: forced variables
  // take their substituted values, dropped variables default to FALSE, and
  // the ground-truth soft optimum regains the statically-decided softs.
  if (work == &env) return;
  const ReductionTrace& tr = presolve_plan->result.trace;
  if (report.ran) {
    report.best_assignment = tr.lift(report.best_assignment);
  }
  if (report.truth.feasible) {
    report.truth.best_soft_satisfied += tr.soft_always_satisfied;
  }
}

void Solver::solve_impl(const Env& env, BackendKind backend,
                        SolveReport& report, obs::Trace& trace) {
  obs::Span solve_span(trace, "solve");
  Stages st(*this, env, backend, report, trace);

  if (!st.begin()) return;
  if (!st.presolve_stage()) return;
  // Decomposition engages only past the cap: at or under it, the pipeline
  // below is byte-for-byte the whole-program solve (the trivial
  // one-subproblem case), decompose.enabled or not.
  st.decomposed = solve_options_.decompose.enabled &&
                  st.work->num_vars() > solve_options_.decompose.subproblem_vars;
  if (!st.analysis_stage()) return;
  if (!st.certify_stage()) return;
  if (!st.truth_stage()) return;
  if (st.decomposed) {
    st.decompose_stage();
  } else {
    st.dispatch_stage();
  }
  st.lift_stage();
}

}  // namespace nck
