#include "runtime/solver.hpp"

#include <cmath>
#include <optional>
#include <string>

#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "classical/exact_solver.hpp"
#include "util/timer.hpp"

namespace nck {
namespace {

void fail(SolveReport& report, FailureKind kind, std::string detail) {
  report.failure = kind;
  report.failure_detail = std::move(detail);
}

/// Best annealer sample: first optimal, else first suboptimal, else first
/// (reads are ordered by ascending logical energy).
void fill_annealer_report(SolveReport& report, const AnnealOutcome& outcome) {
  report.ran = true;
  report.qubits_used = outcome.qubits_used;
  report.num_samples = outcome.samples.size();
  report.counts = classify_all(outcome.evaluations, report.truth);
  report.backend_seconds = outcome.timing.total_us * 1e-6;
  std::size_t best_idx = 0;
  Quality best = Quality::kIncorrect;
  for (std::size_t i = 0; i < outcome.evaluations.size(); ++i) {
    const Quality q = classify(outcome.evaluations[i], report.truth);
    if (q == Quality::kOptimal) {
      best_idx = i;
      best = q;
      break;
    }
    if (q == Quality::kSuboptimal && best == Quality::kIncorrect) {
      best_idx = i;
      best = q;
    }
  }
  report.best_assignment = outcome.samples[best_idx];
  report.best_quality = best;
}

void fill_circuit_report(SolveReport& report, const CircuitOutcome& outcome) {
  report.ran = true;
  report.qubits_used = outcome.qubits_used;
  report.circuit_depth = outcome.depth;
  report.num_samples = outcome.samples.size();
  report.counts = classify_all(outcome.evaluations, report.truth);
  report.backend_seconds = outcome.total_seconds;
  // QAOA reports a single answer: the lowest-energy sample.
  report.best_assignment = outcome.samples.front();
  report.best_quality = classify(outcome.evaluations.front(), report.truth);
}

bool check_finite_nonnegative(double value, const char* what,
                              std::string* why) {
  if (std::isnan(value) || value < 0.0 || !std::isfinite(value)) {
    *why = std::string(what) + " must be finite and >= 0";
    return false;
  }
  return true;
}

}  // namespace

std::string SolveReport::failure_message() const {
  if (failure == FailureKind::kNone) return "";
  if (!failure_detail.empty()) return failure_detail;
  return failure_kind_description(failure);
}

Solver::Solver(std::uint64_t seed)
    : rng_(seed), coupling_(brooklyn_coupling()) {
  Rng device_rng(seed ^ 0xD3071CEull);
  device_ = advantage_4_1(device_rng);
  if (const auto chaos = ResilienceOptions::chaos_from_env()) {
    resilience_ = *chaos;
  }
}

SolveReport Solver::solve(const Env& env, BackendKind backend) {
  SolveReport report;
  report.backend = backend;
  obs::Trace trace;
  solve_impl(env, backend, report, trace);
  report.trace = trace.snapshot();
  return report;
}

AnalysisTarget Solver::target_for(BackendKind backend) const noexcept {
  AnalysisTarget target;
  if (backend == BackendKind::kAnnealer) target.annealer = &device_;
  if (backend == BackendKind::kCircuit) target.coupling = &coupling_;
  return target;
}

bool Solver::validate_options(const std::vector<BackendKind>& chain,
                              SolveReport& report) const {
  std::string why;
  const auto reject = [&](const std::string& detail) {
    fail(report, FailureKind::kBadOptions, "invalid options: " + detail);
    return false;
  };

  if (resilience_.fallback && resilience_.fallback->empty()) {
    return reject("fallback chain is engaged but empty");
  }
  if (!resilience_.retry.validate(&why)) return reject(why);

  bool uses_annealer = false;
  bool uses_circuit = false;
  for (BackendKind b : chain) {
    uses_annealer |= b == BackendKind::kAnnealer;
    uses_circuit |= b == BackendKind::kCircuit;
  }

  if (uses_annealer) {
    const AnnealerSamplerOptions& s = anneal_options_.sampler;
    if (s.num_reads == 0) return reject("annealer num_reads must be > 0");
    if (s.num_sweeps == 0) return reject("annealer num_sweeps must be > 0");
    const DWaveTimingModel& t = s.timing_model;
    if (!check_finite_nonnegative(t.anneal_us, "anneal_us", &why) ||
        !check_finite_nonnegative(t.programming_us, "programming_us", &why) ||
        !check_finite_nonnegative(t.readout_us_per_anneal,
                                  "readout_us_per_anneal", &why) ||
        !check_finite_nonnegative(t.delay_us, "delay_us", &why) ||
        !check_finite_nonnegative(t.postprocess_us, "postprocess_us", &why)) {
      return reject(why);
    }
    if (std::isnan(s.ice_sigma) || s.ice_sigma < 0.0) {
      return reject("ice_sigma must be >= 0");
    }
  }
  if (uses_circuit) {
    const QaoaOptions& q = circuit_options_.qaoa;
    if (q.shots == 0) return reject("circuit shots must be > 0");
    if (q.p < 1) return reject("QAOA depth p must be >= 1");
  }
  return true;
}

void Solver::solve_impl(const Env& env, BackendKind backend,
                        SolveReport& report, obs::Trace& trace) {
  obs::Span solve_span(trace, "solve");

  // Chain: the primary backend, then the fallback rungs in order.
  std::vector<BackendKind> chain{backend};
  if (resilience_.fallback) {
    for (BackendKind b : *resilience_.fallback) {
      if (b != chain.back()) chain.push_back(b);
    }
  }

  if (!validate_options(chain, report)) return;

  // Static analysis runs before any backend (or even ground-truth) work:
  // error diagnostics are sound proofs that the solve cannot succeed. In
  // chain mode a rung-specific error is survivable (the solve degrades),
  // so only program-level errors and NCK-R000 abort.
  {
    obs::Span analyze_span(trace, "analyze");
    if (chain.size() > 1) {
      std::vector<AnalysisTarget> targets;
      targets.reserve(chain.size());
      for (BackendKind b : chain) targets.push_back(target_for(b));
      report.analysis = analyzer_.analyze_chain(env, engine_, targets);
    } else {
      report.analysis = analyzer_.analyze(env, engine_, target_for(backend));
    }
  }
  if (report.analysis.has_errors()) {
    fail(report, FailureKind::kAnalysisRejected,
         "static analysis rejected the program: " + report.analysis.summary());
    return;
  }

  {
    obs::Span truth_span(trace, "ground_truth");
    report.truth = ground_truth(env);
  }
  if (!report.truth.feasible) {
    fail(report, FailureKind::kInfeasible,
         "program is infeasible (hard constraints conflict)");
    return;
  }

  const bool resilient = resilience_.active();
  const RetryPolicy& retry = resilience_.retry;
  FaultInjector injector(resilience_.faults, resilience_.fault_seed);
  SessionClock clock;
  ResilienceLog& log = report.resilience;

  // Dead-qubit events degrade a per-solve copy of the device, so one
  // stormy session never poisons the next solve's calibration.
  const Device* active_device = &device_;
  Device degraded_device;

  std::size_t attempt = 0;
  FailureKind last_failure = FailureKind::kNone;
  std::string last_detail;

  for (std::size_t rung = 0; rung < chain.size(); ++rung) {
    const BackendKind bk = chain[rung];
    if (rung > 0) {
      ++log.fallbacks;
      obs::count(&trace, "resilience.fallbacks");
    }
    report.backend = bk;

    std::size_t reads = anneal_options_.sampler.num_reads;
    std::size_t shots = circuit_options_.qaoa.shots;
    std::size_t optimizer_budget =
        circuit_options_.qaoa.optimizer.max_evaluations;
    std::size_t rung_attempts = 0;

    while (true) {
      // Deadline gate + degradation ladder. The classical rung is the
      // guaranteed landing: it ignores the deadline (its modeled device
      // cost is zero and it is the last resort "instead of failing").
      double remaining = retry.deadline_ms - clock.elapsed_ms();
      if (bk != BackendKind::kClassical && std::isfinite(retry.deadline_ms)) {
        const auto estimate_ms = [&]() {
          if (bk == BackendKind::kAnnealer) {
            return anneal_options_.sampler.timing_model.qpu_access_time_us(
                       reads) *
                   1e-3;
          }
          const IbmTimingModel& t = circuit_options_.timing;
          const double jobs = static_cast<double>(optimizer_budget) + 1.0;
          return (t.server_overhead_s +
                  jobs * (t.job_base_s + 0.5 * t.job_jitter_s +
                          t.optimizer_s_per_job)) *
                 1e3;
        };
        // Documented steps: halve the sample budget (and, for QAOA, the
        // optimizer budget) toward the floor until the modeled attempt
        // cost fits the remaining budget.
        while (estimate_ms() > remaining) {
          bool shrunk = false;
          if (bk == BackendKind::kAnnealer && reads > resilience_.min_reads) {
            reads = degrade_samples(reads, resilience_.min_reads);
            shrunk = true;
          } else if (bk == BackendKind::kCircuit &&
                     (shots > resilience_.min_shots || optimizer_budget > 4)) {
            shots = degrade_samples(shots, resilience_.min_shots);
            optimizer_budget = degrade_samples(optimizer_budget, 4);
            shrunk = true;
          }
          if (!shrunk) break;
          ++log.degradations;
          obs::count(&trace, "resilience.degradations");
        }
        if (estimate_ms() > remaining) {
          log.deadline_exhausted = true;
          last_failure = FailureKind::kDeadlineExhausted;
          last_detail = std::string("session deadline exhausted before a ") +
                        backend_name(bk) + " attempt could fit";
          obs::count(&trace, "resilience.deadline_exhausted");
          break;  // next rung
        }
      }

      ++attempt;
      ++rung_attempts;
      injector.begin_attempt(attempt);

      AttemptRecord rec;
      rec.attempt = attempt;
      rec.backend = bk;
      rec.samples_requested = bk == BackendKind::kAnnealer ? reads
                              : bk == BackendKind::kCircuit ? shots
                                                            : 1;

      // Plain solves keep the pre-resilience trace shape (no attempt
      // wrapper); resilient solves nest each backend span under one.
      std::optional<obs::Span> attempt_span;
      if (resilient) {
        attempt_span.emplace(trace, "attempt");
        obs::count(&trace, "resilience.attempts");
      }
      Timer wall;

      FailureKind fk = FailureKind::kNone;
      std::string detail;
      std::vector<std::size_t> dead_qubits;

      switch (bk) {
        case BackendKind::kClassical: {
          obs::Span span(trace, "classical");
          const ClassicalSolution solution = solve_exact(env);
          report.ran = true;
          report.best_assignment = solution.assignment;
          const Evaluation eval = env.evaluate(solution.assignment);
          report.best_quality = classify(eval, report.truth);
          report.counts = classify_all({eval}, report.truth);
          report.num_samples = 1;
          break;
        }
        case BackendKind::kAnnealer: {
          obs::Span span(trace, "anneal");
          AnnealBackendOptions options = anneal_options_;
          options.sampler.num_reads = reads;
          options.faults = injector.armed() ? &injector : nullptr;
          const AnnealOutcome outcome = run_annealer(
              env, *active_device, engine_, rng_, options, &trace);
          rec.device_ms = outcome.timing.total_us * 1e-3;
          if (outcome.fault) {
            fk = failure_from_fault(*outcome.fault);
            detail = failure_kind_description(fk);
            dead_qubits = outcome.dead_qubits;
            if (!dead_qubits.empty()) {
              detail = std::to_string(dead_qubits.size()) +
                       " embedded qubit(s) died mid-session";
            }
          } else if (!outcome.embedded) {
            fk = FailureKind::kNoEmbedding;
            detail = "no minor embedding found on the device";
          } else if (outcome.samples.empty()) {
            fk = FailureKind::kNoSamples;
            detail = "annealer returned no samples";
          } else {
            fill_annealer_report(report, outcome);
          }
          break;
        }
        case BackendKind::kCircuit: {
          obs::Span span(trace, "circuit");
          CircuitBackendOptions options = circuit_options_;
          options.qaoa.shots = shots;
          options.qaoa.optimizer.max_evaluations = optimizer_budget;
          options.faults = injector.armed() ? &injector : nullptr;
          const CircuitOutcome outcome = run_circuit_backend(
              env, coupling_, engine_, rng_, options, &trace);
          rec.device_ms = outcome.total_seconds * 1e3;
          if (outcome.fault) {
            fk = failure_from_fault(*outcome.fault);
            detail = failure_kind_description(fk);
          } else if (!outcome.fits) {
            fk = FailureKind::kDeviceTooSmall;
            detail = "problem does not fit the 65-qubit device";
          } else if (outcome.samples.empty()) {
            fk = FailureKind::kNoSamples;
            detail = "circuit backend returned no samples";
          } else {
            fill_circuit_report(report, outcome);
          }
          break;
        }
      }

      rec.wall_ms = wall.milliseconds();
      clock.charge_wall_ms(rec.wall_ms);
      clock.charge_device_ms(rec.device_ms);
      const double queue_wait = injector.modeled_wait_ms(attempt);
      if (queue_wait > 0.0) {
        rec.wait_ms += queue_wait;
        clock.charge_wait_ms(queue_wait);
        trace.record_modeled("resilience.queue_wait", queue_wait * 1e3);
      }

      if (fk == FailureKind::kNone) {
        if (resilient) log.attempts.push_back(rec);
        break;  // success: report.ran is set
      }

      rec.failure = fk;
      rec.detail = detail;
      last_failure = fk;
      last_detail = detail;

      const bool can_retry =
          transient_failure(fk) && rung_attempts <= retry.max_retries;
      if (can_retry) {
        if (fk == FailureKind::kDeadQubits) {
          // Degradation ladder, step 1: drop the dead qubits from the
          // working graph and re-embed on the next attempt.
          if (active_device != &degraded_device) {
            degraded_device = device_;
            active_device = &degraded_device;
          }
          for (std::size_t q : dead_qubits) {
            degraded_device.operable[q] = false;
          }
          ++log.reembeds;
          obs::count(&trace, "resilience.reembeds");
        }
        const double backoff = retry.backoff_ms(rung_attempts, rng_);
        rec.wait_ms += backoff;
        clock.charge_wait_ms(backoff);
        trace.record_modeled("resilience.backoff", backoff * 1e3);
        ++log.retries;
        obs::count(&trace, "resilience.retries");
      }
      log.attempts.push_back(rec);
      if (!can_retry) {
        if (transient_failure(fk) && retry.max_retries > 0 &&
            rung + 1 >= chain.size()) {
          last_failure = FailureKind::kRetriesExhausted;
          last_detail = "retry budget exhausted after " +
                        std::to_string(rung_attempts) + " attempt(s) on " +
                        backend_name(bk) + " (last: " + detail + ")";
        }
        break;  // next rung
      }
    }

    if (report.ran) break;
  }

  log.faults = injector.history();
  log.total_wall_ms = clock.wall_ms();
  log.total_device_ms = clock.device_ms();
  log.total_wait_ms = clock.wait_ms();

  if (!report.ran) fail(report, last_failure, last_detail);
}

}  // namespace nck
