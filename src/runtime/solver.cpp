#include "runtime/solver.hpp"

#include <cmath>
#include <optional>
#include <string>
#include <utility>

#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "runtime/backends.hpp"
#include "util/timer.hpp"

namespace nck {
namespace {

void fail(SolveReport& report, FailureKind kind, std::string detail) {
  report.failure = kind;
  report.failure_detail = std::move(detail);
}

/// Folds one successful execute() into the report. single_answer backends
/// (classical witness, circuit lowest-energy sample) report their front
/// sample; sampling backends report the first optimal sample, else the
/// first suboptimal, else the first (annealer reads are ordered by
/// ascending logical energy).
void fill_report(SolveReport& report, const backend::ExecutionResult& res) {
  report.ran = true;
  report.qubits_used = res.qubits_used;
  report.circuit_depth = res.circuit_depth;
  report.num_samples = res.samples.size();
  report.counts = classify_all(res.evaluations, report.truth);
  report.backend_seconds = res.device_seconds;
  std::size_t best_idx = 0;
  Quality best = Quality::kIncorrect;
  if (res.single_answer) {
    best = classify(res.evaluations.front(), report.truth);
  } else {
    for (std::size_t i = 0; i < res.evaluations.size(); ++i) {
      const Quality q = classify(res.evaluations[i], report.truth);
      if (q == Quality::kOptimal) {
        best_idx = i;
        best = q;
        break;
      }
      if (q == Quality::kSuboptimal && best == Quality::kIncorrect) {
        best_idx = i;
        best = q;
      }
    }
  }
  report.best_assignment = res.samples[best_idx];
  report.best_quality = best;
}

/// Ground truth is deterministic in the program alone, so it lives in the
/// content-addressed cache next to the backend plans: a batch of repeated
/// (or renamed-isomorphic) programs certifies once.
struct TruthPlan final : backend::Plan {
  GroundTruth truth;
  std::size_t bytes() const noexcept override { return sizeof(TruthPlan); }
};

/// Certificates are deterministic in the program plus the certification
/// thresholds, so they share the content-addressed cache: a warm solve
/// recalls the artifact and re-derives the NCK-V* diagnostics by pure
/// arithmetic, enumerating zero assignments.
struct CertificatePlan final : backend::Plan {
  ProgramCertificate certificate;
  std::size_t bytes() const noexcept override {
    return sizeof(CertificatePlan) +
           certificate.constraints.size() * sizeof(ConstraintCertificate);
  }
};

backend::Fingerprint certificate_key(const Env& env,
                                     const CertifyOptions& options) {
  backend::Fingerprint key;
  key.mix(std::string("certificate"));
  key.mix(options.eps);
  key.mix(options.hard_margin);
  key.mix(static_cast<std::uint64_t>(options.max_enum_vars));
  backend::mix_env(key, env);
  return key;
}

/// Presolve reductions are deterministic in the program plus the reduce
/// options, so the reduced program, its trace, and its equivalence verdict
/// live in the content-addressed cache: warm solves (and permuted-but-
/// identical programs, thanks to the canonical mix_env) skip the dataflow
/// fixpoint and the 2^n verification entirely.
struct PresolvePlan final : backend::Plan {
  ReduceResult result;
  ReductionVerdict verdict;
  std::size_t bytes() const noexcept override {
    return sizeof(PresolvePlan) +
           result.steps.size() * sizeof(ReductionStep) +
           result.trace.forced.size() + result.trace.kept.size() * sizeof(VarId);
  }
};

backend::Fingerprint presolve_key(const Env& env, const ReduceOptions& options) {
  backend::Fingerprint key;
  key.mix(std::string("presolve"));
  key.mix(static_cast<std::uint64_t>(options.verify_max_vars));
  key.mix(options.dataflow.mine_pairs);
  key.mix(static_cast<std::uint64_t>(options.dataflow.max_propagation_cardinality));
  key.mix(static_cast<std::uint64_t>(options.dataflow.max_pair_vars));
  backend::mix_env(key, env);
  return key;
}

}  // namespace

std::string SolveReport::failure_message() const {
  if (failure == FailureKind::kNone) return "";
  if (!failure_detail.empty()) return failure_detail;
  return failure_kind_description(failure);
}

Solver::Solver(std::uint64_t seed)
    : rng_(seed),
      coupling_(brooklyn_coupling()),
      plan_cache_(std::make_shared<backend::PlanCache>()) {
  Rng device_rng(seed ^ 0xD3071CEull);
  device_ = advantage_4_1(device_rng);
  if (const auto chaos = ResilienceOptions::chaos_from_env()) {
    resilience_ = *chaos;
  }
  register_builtin_backends(registry_, &anneal_options_, &device_,
                            &circuit_options_, &coupling_);
  engine_.set_shared_cache(&plan_cache_->synth_cache());
}

void Solver::set_plan_cache(std::shared_ptr<backend::PlanCache> cache) {
  if (cache == nullptr) return;
  plan_cache_ = std::move(cache);
  engine_.set_shared_cache(&plan_cache_->synth_cache());
}

SolveReport Solver::solve(const Env& env, BackendKind backend) {
  SolveReport report;
  report.backend = backend;
  obs::Trace trace;
  solve_impl(env, backend, report, trace);
  report.trace = trace.snapshot();
  return report;
}

bool Solver::validate_options(const std::vector<BackendKind>& chain,
                              SolveReport& report) const {
  std::string why;
  const auto reject = [&](const std::string& detail) {
    fail(report, FailureKind::kBadOptions, "invalid options: " + detail);
    return false;
  };

  if (resilience_.fallback && resilience_.fallback->empty()) {
    return reject("fallback chain is engaged but empty");
  }
  if (!resilience_.retry.validate(&why)) return reject(why);
  if (std::isnan(solve_options_.wall_budget_ms)) {
    return reject("wall_budget_ms is NaN");
  }

  for (BackendKind bk : chain) {
    const backend::Backend* be = registry_.find(bk);
    if (be == nullptr) {
      return reject(std::string("no backend registered for ") +
                    backend_name(bk));
    }
    if (!be->validate(&why)) return reject(why);
  }
  return true;
}

void Solver::solve_impl(const Env& env, BackendKind backend,
                        SolveReport& report, obs::Trace& trace) {
  obs::Span solve_span(trace, "solve");

  // Wall-clock deadline (distinct from the modeled-session deadline in
  // RetryPolicy::deadline_ms; see SolveOptions::wall_budget_ms). The gate
  // runs at entry — an already-expired request fails fast without burning
  // any presolve/analysis/backend work — and again between stages and
  // before every attempt.
  const Timer wall_clock;
  const double wall_budget = solve_options_.wall_budget_ms;
  const auto wall_expired = [&]() noexcept {
    return wall_clock.milliseconds() >= wall_budget;
  };
  const auto fail_wall = [&](const char* stage) {
    report.resilience.deadline_exhausted = true;
    obs::count(&trace, "resilience.wall_deadline_exhausted");
    fail(report, FailureKind::kDeadlineExhausted,
         std::string("wall-clock deadline exhausted ") + stage + " (budget " +
             std::to_string(wall_budget) + " ms)");
  };
  if (wall_budget <= 0.0) {
    fail_wall("before the solve started");
    return;
  }

  // Chain: the primary backend, then the fallback rungs in order, with
  // every duplicate kind dropped (first occurrence wins). Validation and
  // analysis below run over the deduplicated chain, so a rung listed
  // twice is checked — and diagnosed — once.
  std::vector<BackendKind> chain{backend};
  if (resilience_.fallback) {
    for (BackendKind b : *resilience_.fallback) {
      bool seen = false;
      for (BackendKind c : chain) seen = seen || c == b;
      if (!seen) chain.push_back(b);
    }
  }

  if (!validate_options(chain, report)) return;

  // Presolve: run the dataflow fixpoint and the model-preserving reduction
  // catalog before anything else touches the program. On success the whole
  // pipeline below — analysis, certification, ground truth, backend plan
  // keys — operates on the reduced program, and samples are lifted back to
  // original space at the end. Three non-identity outcomes:
  //   reduced          `work` switches to the cached reduced program;
  //   proved unsat     `work` stays original, so the analysis block below
  //                    rejects it with the usual NCK-P001/P002/D003 story;
  //   rejected         the equivalence check failed (NCK-D004 warning is
  //                    appended after analysis); `work` stays original.
  const Env* work = &env;
  backend::PlanPtr presolve_plan_ptr;  // owns the reduced Env `work` may alias
  const PresolvePlan* presolve_plan = nullptr;
  bool presolve_rejected = false;
  if (solve_options_.presolve) {
    obs::Span presolve_span(trace, "presolve");
    const backend::Fingerprint key =
        presolve_key(env, solve_options_.reduce_options);
    if (backend::PlanPtr cached = plan_cache_->find(key)) {
      obs::count(&trace, "plan_cache.hit");
      obs::count(&trace, "presolve.cache_hit");
      presolve_plan_ptr = std::move(cached);
    } else {
      obs::count(&trace, "plan_cache.miss");
      obs::count(&trace, "presolve.cache_miss");
      auto plan = std::make_shared<PresolvePlan>();
      plan->result = reduce_program(env, solve_options_.reduce_options);
      plan->verdict = verify_reduction(
          env, plan->result, solve_options_.reduce_options.verify_max_vars);
      presolve_plan_ptr = std::move(plan);
      plan_cache_->insert(key, presolve_plan_ptr);
    }
    presolve_plan = static_cast<const PresolvePlan*>(presolve_plan_ptr.get());
    const ReduceResult& red = presolve_plan->result;
    PresolveSummary summary = summarize_reduction(env, red);
    summary.verified = presolve_plan->verdict.checked &&
                       presolve_plan->verdict.ok;
    summary.rejected = presolve_plan->verdict.checked &&
                       !presolve_plan->verdict.ok;
    presolve_rejected = summary.rejected;
    if (red.changed() || red.proved_unsat || summary.rejected) {
      report.presolve = summary;
    }
    if (!summary.rejected && !red.proved_unsat && red.changed()) {
      work = &red.reduced;
      trace.registry().add("presolve.forced",
                           static_cast<double>(summary.forced));
      trace.registry().add("presolve.removed_constraints",
                           static_cast<double>(summary.removed_constraints));
    }
  }

  // Fully decided program: every variable forced, every constraint removed.
  // The lifted forced assignment is the unique answer consistent with the
  // hard constraints; no backend needs to run.
  if (work != &env && work->num_constraints() == 0) {
    const ReductionTrace& tr = presolve_plan->result.trace;
    report.ran = true;
    report.truth = {true, tr.soft_always_satisfied};
    report.best_assignment =
        tr.lift(std::vector<bool>(work->num_vars(), false));
    report.best_quality = Quality::kOptimal;
    report.num_samples = 1;
    report.counts.optimal = 1;
    obs::count(&trace, "presolve.short_circuit");
    return;
  }

  // Static analysis runs before any backend (or even ground-truth) work:
  // error diagnostics are sound proofs that the solve cannot succeed. In
  // chain mode a rung-specific error is survivable (the solve degrades),
  // so only program-level errors and NCK-R000 abort.
  // While certifying, the heuristic NCK-P007 scale-separation pass yields
  // to its sound NCK-V001/V002 successors (restored after the analyze run).
  const bool saved_scale_separation =
      analyzer_.options().program.scale_separation;
  if (solve_options_.certify) {
    analyzer_.options().program.scale_separation = false;
  }
  {
    obs::Span analyze_span(trace, "analyze");
    if (chain.size() > 1) {
      std::vector<AnalysisTarget> targets;
      targets.reserve(chain.size());
      for (BackendKind b : chain) {
        targets.push_back(registry_.find(b)->analysis_target());
      }
      report.analysis = analyzer_.analyze_chain(*work, engine_, targets);
    } else {
      report.analysis = analyzer_.analyze(
          *work, engine_, registry_.find(backend)->analysis_target());
    }
  }
  analyzer_.options().program.scale_separation = saved_scale_separation;
  if (presolve_rejected) {
    report.analysis.add(
        {Severity::kWarning, DiagCode::kReductionRejected,
         DiagLocation::program(),
         "presolve produced a reduction that failed equivalence "
         "certification; solving the original program (" +
             presolve_plan->verdict.detail + ")",
         "this indicates a reduction-catalog bug; `nck_cli simplify` on "
         "this program reproduces it"});
    report.analysis.canonicalize();
  }
  if (report.analysis.has_errors()) {
    fail(report, FailureKind::kAnalysisRejected,
         "static analysis rejected the program: " + report.analysis.summary());
    return;
  }

  if (solve_options_.certify) {
    obs::Span certify_span(trace, "certify");
    const backend::Fingerprint key =
        certificate_key(*work, solve_options_.certify_options);
    ProgramCertificate cert;
    if (const backend::PlanPtr cached = plan_cache_->find(key)) {
      obs::count(&trace, "plan_cache.hit");
      obs::count(&trace, "certify.cache_hits");
      cert = static_cast<const CertificatePlan&>(*cached).certificate;
    } else {
      obs::count(&trace, "plan_cache.miss");
      cert = certify_program(*work, engine_, solve_options_.certify_options);
      // Enumeration happens only on this cold path; the warm-solve test
      // asserts this counter stays flat.
      trace.registry().add("certify.constraints_enumerated",
                           static_cast<double>(cert.constraints.size()));
      auto plan = std::make_shared<CertificatePlan>();
      plan->certificate = cert;
      plan_cache_->insert(key, std::move(plan));
    }
    report_certificate(*work, cert, solve_options_.certify_options,
                       report.analysis);
    report.certificate = std::move(cert);
    if (report.analysis.has_errors()) {
      fail(report, FailureKind::kAnalysisRejected,
           "certification rejected the program: " +
               report.analysis.summary());
      return;
    }
  }

  {
    obs::Span truth_span(trace, "ground_truth");
    backend::Fingerprint truth_key;
    truth_key.mix(std::string("truth"));
    backend::mix_env(truth_key, *work);
    if (const backend::PlanPtr cached = plan_cache_->find(truth_key)) {
      obs::count(&trace, "plan_cache.hit");
      report.truth = static_cast<const TruthPlan&>(*cached).truth;
    } else {
      obs::count(&trace, "plan_cache.miss");
      report.truth = ground_truth(*work);
      auto plan = std::make_shared<TruthPlan>();
      plan->truth = report.truth;
      plan_cache_->insert(truth_key, std::move(plan));
    }
  }
  if (!report.truth.feasible) {
    fail(report, FailureKind::kInfeasible,
         "program is infeasible (hard constraints conflict)");
    return;
  }
  if (wall_expired()) {
    fail_wall("before dispatch");
    return;
  }

  const bool resilient = resilience_.active();
  const RetryPolicy& retry = resilience_.retry;
  FaultInjector injector(resilience_.faults, resilience_.fault_seed);
  // Backoff jitter draws from its own stream, never from the solve's
  // sample stream, so a solve preceded by rejected attempts samples
  // exactly like a clean solve.
  Rng backoff_rng(resilience_.fault_seed ^ 0xB0FFull);
  SessionClock clock;
  ResilienceLog& log = report.resilience;

  const backend::SampleFloors floors{resilience_.min_reads,
                                     resilience_.min_shots};

  // Dead-qubit events degrade a per-solve copy of the device, so one
  // stormy session never poisons the next solve's calibration. The
  // degraded topology changes the plan key, which forces the re-embed
  // on the next attempt without any backend-specific logic here.
  const Device* active_device = &device_;
  Device degraded_device;

  std::size_t attempt = 0;
  FailureKind last_failure = FailureKind::kNone;
  std::string last_detail;
  bool wall_out = false;

  for (std::size_t rung = 0; rung < chain.size() && !wall_out; ++rung) {
    const BackendKind bk = chain[rung];
    const backend::Backend& be = *registry_.find(bk);
    if (rung > 0) {
      ++log.fallbacks;
      obs::count(&trace, "resilience.fallbacks");
    }
    report.backend = bk;

    backend::Budget budget = be.initial_budget(floors);
    std::size_t rung_attempts = 0;

    while (true) {
      // Wall-clock gate first: unlike the modeled deadline below it has no
      // exempt backend — once real time is up, every further attempt is
      // wasted work for a caller that has already timed out.
      if (wall_expired()) {
        log.deadline_exhausted = true;
        last_failure = FailureKind::kDeadlineExhausted;
        last_detail = std::string("wall-clock deadline exhausted before a ") +
                      backend_name(bk) + " attempt";
        obs::count(&trace, "resilience.wall_deadline_exhausted");
        wall_out = true;
        break;
      }

      // Deadline gate + degradation ladder. Deadline-exempt backends (the
      // classical rung) are the guaranteed landing: they cost no modeled
      // device time and exist precisely to land the solve.
      const double remaining = retry.deadline_ms - clock.elapsed_ms();
      if (!be.deadline_exempt() && std::isfinite(retry.deadline_ms)) {
        // Documented steps: shrink the sample budget toward its floors
        // until the modeled attempt cost fits the remaining budget.
        while (be.estimate_attempt_ms(budget) > remaining) {
          if (!be.degrade(budget)) break;
          ++log.degradations;
          obs::count(&trace, "resilience.degradations");
        }
        if (be.estimate_attempt_ms(budget) > remaining) {
          log.deadline_exhausted = true;
          last_failure = FailureKind::kDeadlineExhausted;
          last_detail = std::string("session deadline exhausted before a ") +
                        backend_name(bk) + " attempt could fit";
          obs::count(&trace, "resilience.deadline_exhausted");
          break;  // next rung
        }
      }

      ++attempt;
      ++rung_attempts;
      injector.begin_attempt(attempt);

      AttemptRecord rec;
      rec.attempt = attempt;
      rec.backend = bk;
      rec.samples_requested = budget.samples;

      // Plain solves keep the pre-resilience trace shape (no attempt
      // wrapper); resilient solves nest each backend span under one.
      std::optional<obs::Span> attempt_span;
      if (resilient) {
        attempt_span.emplace(trace, "attempt");
        obs::count(&trace, "resilience.attempts");
      }
      Timer wall;

      FailureKind fk = FailureKind::kNone;
      std::string detail;
      std::vector<std::size_t> dead_qubits;

      {
        obs::Span span(trace, be.name());

        backend::PrepareContext pctx;
        pctx.env = work;
        pctx.engine = &engine_;
        pctx.trace = &trace;
        pctx.device = active_device;
        pctx.key = be.plan_key(pctx);

        backend::PlanPtr plan = plan_cache_->find(pctx.key);
        if (plan != nullptr) {
          obs::count(&trace, "plan_cache.hit");
        } else {
          obs::count(&trace, "plan_cache.miss");
          backend::PrepareOutcome prep = be.prepare(pctx);
          if (prep.failure != FailureKind::kNone) {
            fk = prep.failure;
            detail = std::move(prep.detail);
          } else {
            plan = std::move(prep.plan);
            plan_cache_->insert(pctx.key, plan);
          }
        }

        if (fk == FailureKind::kNone) {
          backend::ExecuteContext ectx;
          ectx.rng = &rng_;
          ectx.trace = &trace;
          ectx.faults = injector.armed() ? &injector : nullptr;
          ectx.budget = budget;
          backend::ExecutionResult res = be.execute(*plan, ectx);
          rec.device_ms = res.device_seconds * 1e3;
          if (res.failure != FailureKind::kNone) {
            fk = res.failure;
            detail = std::move(res.detail);
            dead_qubits = std::move(res.dead_qubits);
          } else {
            fill_report(report, res);
          }
        }
      }

      rec.wall_ms = wall.milliseconds();
      clock.charge_wall_ms(rec.wall_ms);
      clock.charge_device_ms(rec.device_ms);
      const double queue_wait = injector.modeled_wait_ms(attempt);
      if (queue_wait > 0.0) {
        rec.wait_ms += queue_wait;
        clock.charge_wait_ms(queue_wait);
        trace.record_modeled("resilience.queue_wait", queue_wait * 1e3);
      }

      if (fk == FailureKind::kNone) {
        if (resilient) log.attempts.push_back(rec);
        break;  // success: report.ran is set
      }

      rec.failure = fk;
      rec.detail = detail;
      last_failure = fk;
      last_detail = detail;

      const bool can_retry =
          transient_failure(fk) && rung_attempts <= retry.max_retries;
      if (can_retry) {
        if (fk == FailureKind::kDeadQubits) {
          // Degradation ladder, step 1: drop the dead qubits from the
          // working graph; the changed plan key re-embeds next attempt.
          if (active_device != &degraded_device) {
            degraded_device = device_;
            active_device = &degraded_device;
          }
          for (std::size_t q : dead_qubits) {
            degraded_device.operable[q] = false;
          }
          ++log.reembeds;
          obs::count(&trace, "resilience.reembeds");
        }
        const double backoff = retry.backoff_ms(rung_attempts, backoff_rng);
        rec.wait_ms += backoff;
        clock.charge_wait_ms(backoff);
        trace.record_modeled("resilience.backoff", backoff * 1e3);
        ++log.retries;
        obs::count(&trace, "resilience.retries");
      }
      log.attempts.push_back(rec);
      if (!can_retry) {
        if (transient_failure(fk) && retry.max_retries > 0 &&
            rung + 1 >= chain.size()) {
          last_failure = FailureKind::kRetriesExhausted;
          last_detail = "retry budget exhausted after " +
                        std::to_string(rung_attempts) + " attempt(s) on " +
                        backend_name(bk) + " (last: " + detail + ")";
        }
        break;  // next rung
      }
    }

    if (report.ran) break;
  }

  log.faults = injector.history();
  log.total_wall_ms = clock.wall_ms();
  log.total_device_ms = clock.device_ms();
  log.total_wait_ms = clock.wait_ms();

  if (!report.ran) fail(report, last_failure, last_detail);

  // Lift the reduced-space result back to original space: forced variables
  // take their substituted values, dropped variables default to FALSE, and
  // the ground-truth soft optimum regains the statically-decided softs.
  if (work != &env) {
    const ReductionTrace& tr = presolve_plan->result.trace;
    if (report.ran) {
      report.best_assignment = tr.lift(report.best_assignment);
    }
    if (report.truth.feasible) {
      report.truth.best_soft_satisfied += tr.soft_always_satisfied;
    }
  }
}

}  // namespace nck
