#include "runtime/result.hpp"

#include "classical/exact_solver.hpp"

namespace nck {

const char* quality_name(Quality q) noexcept {
  switch (q) {
    case Quality::kOptimal: return "optimal";
    case Quality::kSuboptimal: return "suboptimal";
    case Quality::kIncorrect: return "incorrect";
  }
  return "?";
}

GroundTruth ground_truth(const Env& env) {
  const ClassicalSolution solution = solve_exact(env);
  return {solution.feasible, solution.soft_satisfied};
}

Quality classify(const Evaluation& eval, const GroundTruth& truth) noexcept {
  if (!eval.feasible()) return Quality::kIncorrect;
  if (eval.soft_satisfied >= truth.best_soft_satisfied) {
    return Quality::kOptimal;
  }
  return Quality::kSuboptimal;
}

QualityCounts classify_all(const std::vector<Evaluation>& evals,
                           const GroundTruth& truth) {
  QualityCounts counts;
  for (const Evaluation& e : evals) {
    switch (classify(e, truth)) {
      case Quality::kOptimal: ++counts.optimal; break;
      case Quality::kSuboptimal: ++counts.suboptimal; break;
      case Quality::kIncorrect: ++counts.incorrect; break;
    }
  }
  return counts;
}

}  // namespace nck
