#include "runtime/resilience.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "util/table.hpp"

namespace nck {

const char* failure_kind_name(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kBadOptions: return "bad-options";
    case FailureKind::kAnalysisRejected: return "analysis-rejected";
    case FailureKind::kInfeasible: return "infeasible";
    case FailureKind::kNoEmbedding: return "no-embedding";
    case FailureKind::kDeviceTooSmall: return "device-too-small";
    case FailureKind::kNoSamples: return "no-samples";
    case FailureKind::kJobRejected: return "job-rejected";
    case FailureKind::kQueueTimeout: return "queue-timeout";
    case FailureKind::kDeadQubits: return "dead-qubits";
    case FailureKind::kExecutionError: return "execution-error";
    case FailureKind::kRetriesExhausted: return "retries-exhausted";
    case FailureKind::kDeadlineExhausted: return "deadline-exhausted";
  }
  return "?";
}

const char* failure_kind_description(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kNone: return "the solve ran";
    case FailureKind::kBadOptions: return "backend options are invalid";
    case FailureKind::kAnalysisRejected:
      return "static analysis rejected the program";
    case FailureKind::kInfeasible:
      return "program is infeasible (hard constraints conflict)";
    case FailureKind::kNoEmbedding:
      return "no minor embedding found on the device";
    case FailureKind::kDeviceTooSmall:
      return "problem does not fit the device";
    case FailureKind::kNoSamples: return "backend returned no samples";
    case FailureKind::kJobRejected:
      return "job submission rejected by the scheduler";
    case FailureKind::kQueueTimeout: return "job timed out in the queue";
    case FailureKind::kDeadQubits:
      return "embedded qubits died mid-session";
    case FailureKind::kExecutionError:
      return "transient circuit-execution error";
    case FailureKind::kRetriesExhausted:
      return "retry budget exhausted without a successful attempt";
    case FailureKind::kDeadlineExhausted:
      return "session deadline exhausted";
  }
  return "?";
}

bool transient_failure(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kJobRejected:
    case FailureKind::kQueueTimeout:
    case FailureKind::kDeadQubits:
    case FailureKind::kExecutionError:
      return true;
    default:
      return false;
  }
}

FailureKind failure_from_fault(FaultKind fault) noexcept {
  switch (fault) {
    case FaultKind::kJobRejection: return FailureKind::kJobRejected;
    case FaultKind::kQueueTimeout: return FailureKind::kQueueTimeout;
    case FaultKind::kDeadQubits: return FailureKind::kDeadQubits;
    case FaultKind::kExecutionError: return FailureKind::kExecutionError;
    // Drift degrades samples but never aborts an attempt by itself.
    case FaultKind::kCalibrationDrift: return FailureKind::kNone;
  }
  return FailureKind::kNone;
}

bool ResilienceOptions::active() const noexcept {
  return !faults.empty() || retry.max_retries > 0 || fallback.has_value() ||
         std::isfinite(retry.deadline_ms);
}

std::optional<ResilienceOptions> ResilienceOptions::chaos_from_env() {
  const char* value = std::getenv("NCK_CHAOS");
  if (value == nullptr || std::strcmp(value, "0") == 0 || *value == '\0') {
    return std::nullopt;
  }
  ResilienceOptions chaos;
  chaos.faults = FaultPlan::chaos_default();
  chaos.fault_seed = 0xC4A05u;
  chaos.retry.max_retries = 4;
  // Backoff is modeled, but keep it small so chaos deadline tests (which
  // layer their own budgets on top) stay predictable.
  chaos.retry.backoff_initial_ms = 5.0;
  return chaos;
}

void ResilienceLog::print(std::ostream& os) const {
  if (attempts.empty()) {
    os << "resilience: no attempts recorded\n";
    return;
  }
  os << "resilience: " << attempts.size() << " attempt(s), " << retries
     << " retry(ies), " << reembeds << " re-embed(s), " << fallbacks
     << " fallback(s), " << degradations << " degradation(s)";
  if (deadline_exhausted) os << ", deadline exhausted";
  os << "\n";
  Table table({"#", "backend", "requested", "outcome", "wall(ms)",
               "device(ms)", "wait(ms)", "detail"});
  for (const AttemptRecord& a : attempts) {
    table.row()
        .cell(a.attempt)
        .cell(backend_name(a.backend))
        .cell(a.samples_requested)
        .cell(a.failure == FailureKind::kNone ? "ok"
                                              : failure_kind_name(a.failure))
        .cell(a.wall_ms, 2)
        .cell(a.device_ms, 2)
        .cell(a.wait_ms, 2)
        .cell(a.detail);
  }
  table.print(os);
  if (!faults.empty()) {
    Table fired({"fault", "attempt", "param", "qubits_killed"});
    for (const FaultRecord& f : faults) {
      fired.row()
          .cell(fault_name(f.kind))
          .cell(f.attempt)
          .cell(f.param, 3)
          .cell(f.qubits_killed);
    }
    fired.print(os);
  }
}

}  // namespace nck
