#include "runtime/resilience.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ostream>

#include "util/table.hpp"

namespace nck {

bool ResilienceOptions::active() const noexcept {
  return !faults.empty() || retry.max_retries > 0 || fallback.has_value() ||
         std::isfinite(retry.deadline_ms);
}

std::optional<ResilienceOptions> ResilienceOptions::chaos_from_env() {
  const char* value = std::getenv("NCK_CHAOS");
  if (value == nullptr || std::strcmp(value, "0") == 0 || *value == '\0') {
    return std::nullopt;
  }
  ResilienceOptions chaos;
  chaos.faults = FaultPlan::chaos_default();
  chaos.fault_seed = 0xC4A05u;
  chaos.retry.max_retries = 4;
  // Backoff is modeled, but keep it small so chaos deadline tests (which
  // layer their own budgets on top) stay predictable.
  chaos.retry.backoff_initial_ms = 5.0;
  return chaos;
}

void ResilienceLog::print(std::ostream& os) const {
  if (attempts.empty()) {
    os << "resilience: no attempts recorded\n";
    return;
  }
  os << "resilience: " << attempts.size() << " attempt(s), " << retries
     << " retry(ies), " << reembeds << " re-embed(s), " << fallbacks
     << " fallback(s), " << degradations << " degradation(s)";
  if (deadline_exhausted) os << ", deadline exhausted";
  os << "\n";
  Table table({"#", "backend", "requested", "outcome", "wall(ms)",
               "device(ms)", "wait(ms)", "detail"});
  for (const AttemptRecord& a : attempts) {
    table.row()
        .cell(a.attempt)
        .cell(backend_name(a.backend))
        .cell(a.samples_requested)
        .cell(a.failure == FailureKind::kNone ? "ok"
                                              : failure_kind_name(a.failure))
        .cell(a.wall_ms, 2)
        .cell(a.device_ms, 2)
        .cell(a.wait_ms, 2)
        .cell(a.detail);
  }
  table.print(os);
  if (!faults.empty()) {
    Table fired({"fault", "attempt", "param", "qubits_killed"});
    for (const FaultRecord& f : faults) {
      fired.row()
          .cell(fault_name(f.kind))
          .cell(f.attempt)
          .cell(f.param, 3)
          .cell(f.qubits_killed);
    }
    fired.print(os);
  }
}

}  // namespace nck
