// Typed failure causes, resilience configuration, and the per-solve
// recovery log. Together with resilience/fault.hpp and
// resilience/policy.hpp this is the contract of the resilient solve
// layer: runtime::Solver retries transient failures with modeled
// exponential backoff, re-embeds around dead qubits, shrinks sample
// budgets under deadline pressure, and falls back along a configurable
// backend chain before giving up. Every attempt and every recovery
// action lands in the SolveReport's ResilienceLog and as obs spans and
// counters, so `--trace` shows the whole recovery story.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "backend/kinds.hpp"  // re-exports FailureKind + helpers
#include "resilience/fault.hpp"
#include "resilience/policy.hpp"
#include "runtime/result.hpp"

namespace nck {

struct ResilienceOptions {
  FaultPlan faults;                     // empty = no injection
  std::uint64_t fault_seed = 0xC4A05u;  // injector stream, per solve
  RetryPolicy retry;
  /// Backends tried, in order, after the primary backend exhausts its
  /// retries (or the deadline). nullopt = no fallback; an engaged-but-
  /// empty chain is rejected as kBadOptions.
  std::optional<std::vector<BackendKind>> fallback;
  /// Degradation-ladder floors: sample budgets are halved toward these
  /// under deadline pressure, never below.
  std::size_t min_reads = 10;
  std::size_t min_shots = 100;

  /// Anything for the solve loop to do beyond the one-shot path?
  bool active() const noexcept;
  /// The fixed-seed chaos configuration enabled by NCK_CHAOS=1 (used by
  /// the CI chaos job): FaultPlan::chaos_default() plus four retries.
  /// nullopt when the environment variable is unset or "0".
  static std::optional<ResilienceOptions> chaos_from_env();
};

/// One dispatch of one backend within a solve.
struct AttemptRecord {
  std::size_t attempt = 0;  // 1-based, global across fallback rungs
  BackendKind backend = BackendKind::kClassical;
  /// num_reads / shots actually requested (after degradation); 1 for the
  /// classical backend.
  std::size_t samples_requested = 0;
  FailureKind failure = FailureKind::kNone;  // kNone = this attempt ran
  std::string detail;
  double wall_ms = 0.0;    // measured client time for this attempt
  double device_ms = 0.0;  // modeled device/QPU time charged
  double wait_ms = 0.0;    // modeled backoff + queue-timeout waits
};

/// The recovery story of one solve.
struct ResilienceLog {
  std::vector<AttemptRecord> attempts;
  std::vector<FaultRecord> faults;  // everything the injector fired
  std::size_t retries = 0;          // attempts re-run after a transient failure
  std::size_t reembeds = 0;         // re-embeds forced by dead-qubit events
  std::size_t fallbacks = 0;        // rung changes along the fallback chain
  std::size_t degradations = 0;     // sample-budget halvings under deadline
  double total_wall_ms = 0.0;
  double total_device_ms = 0.0;
  double total_wait_ms = 0.0;
  bool deadline_exhausted = false;

  bool empty() const noexcept { return attempts.empty(); }
  /// Aligned summary + per-attempt table via util/table (the
  /// `nck_cli solve` resilience section).
  void print(std::ostream& os) const;
};

}  // namespace nck
