// Typed failure causes, resilience configuration, and the per-solve
// recovery log. Together with resilience/fault.hpp and
// resilience/policy.hpp this is the contract of the resilient solve
// layer: runtime::Solver retries transient failures with modeled
// exponential backoff, re-embeds around dead qubits, shrinks sample
// budgets under deadline pressure, and falls back along a configurable
// backend chain before giving up. Every attempt and every recovery
// action lands in the SolveReport's ResilienceLog and as obs spans and
// counters, so `--trace` shows the whole recovery story.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "resilience/fault.hpp"
#include "resilience/policy.hpp"
#include "runtime/result.hpp"

namespace nck {

/// Why a solve (or one attempt of it) did not produce samples. Callers
/// and the retry logic branch on this instead of string-matching;
/// SolveReport::failure_message() keeps the human-readable story.
enum class FailureKind {
  kNone = 0,           // the solve ran
  kBadOptions,         // rejected at entry: nonsensical backend options
  kAnalysisRejected,   // static analysis proved the solve cannot succeed
  kInfeasible,         // hard constraints conflict (ground truth)
  kNoEmbedding,        // no minor embedding on the working graph
  kDeviceTooSmall,     // more QUBO variables than physical qubits
  kNoSamples,          // backend produced an empty sample set
  kJobRejected,        // injected: scheduler refused the job
  kQueueTimeout,       // injected: queue wait exceeded the limit
  kDeadQubits,         // injected: embedded qubits died mid-session
  kExecutionError,     // injected: transient circuit-execution failure
  kRetriesExhausted,   // transient failures outlasted the retry budget
  kDeadlineExhausted,  // the session deadline ran out
};

/// "dead-qubits", "retries-exhausted", ... — stable identifier.
const char* failure_kind_name(FailureKind kind) noexcept;
/// One-sentence display description ("no minor embedding found ...").
const char* failure_kind_description(FailureKind kind) noexcept;
/// Transient failures may succeed on a retry of the same backend
/// (after recovery actions such as re-embedding); permanent ones move
/// straight to the next fallback rung.
bool transient_failure(FailureKind kind) noexcept;
/// The FailureKind an injected fault surfaces as.
FailureKind failure_from_fault(FaultKind fault) noexcept;

struct ResilienceOptions {
  FaultPlan faults;                     // empty = no injection
  std::uint64_t fault_seed = 0xC4A05u;  // injector stream, per solve
  RetryPolicy retry;
  /// Backends tried, in order, after the primary backend exhausts its
  /// retries (or the deadline). nullopt = no fallback; an engaged-but-
  /// empty chain is rejected as kBadOptions.
  std::optional<std::vector<BackendKind>> fallback;
  /// Degradation-ladder floors: sample budgets are halved toward these
  /// under deadline pressure, never below.
  std::size_t min_reads = 10;
  std::size_t min_shots = 100;

  /// Anything for the solve loop to do beyond the one-shot path?
  bool active() const noexcept;
  /// The fixed-seed chaos configuration enabled by NCK_CHAOS=1 (used by
  /// the CI chaos job): FaultPlan::chaos_default() plus four retries.
  /// nullopt when the environment variable is unset or "0".
  static std::optional<ResilienceOptions> chaos_from_env();
};

/// One dispatch of one backend within a solve.
struct AttemptRecord {
  std::size_t attempt = 0;  // 1-based, global across fallback rungs
  BackendKind backend = BackendKind::kClassical;
  /// num_reads / shots actually requested (after degradation); 1 for the
  /// classical backend.
  std::size_t samples_requested = 0;
  FailureKind failure = FailureKind::kNone;  // kNone = this attempt ran
  std::string detail;
  double wall_ms = 0.0;    // measured client time for this attempt
  double device_ms = 0.0;  // modeled device/QPU time charged
  double wait_ms = 0.0;    // modeled backoff + queue-timeout waits
};

/// The recovery story of one solve.
struct ResilienceLog {
  std::vector<AttemptRecord> attempts;
  std::vector<FaultRecord> faults;  // everything the injector fired
  std::size_t retries = 0;          // attempts re-run after a transient failure
  std::size_t reembeds = 0;         // re-embeds forced by dead-qubit events
  std::size_t fallbacks = 0;        // rung changes along the fallback chain
  std::size_t degradations = 0;     // sample-budget halvings under deadline
  double total_wall_ms = 0.0;
  double total_device_ms = 0.0;
  double total_wait_ms = 0.0;
  bool deadline_exhausted = false;

  bool empty() const noexcept { return attempts.empty(); }
  /// Aligned summary + per-attempt table via util/table (the
  /// `nck_cli solve` resilience section).
  void print(std::ostream& os) const;
};

}  // namespace nck
