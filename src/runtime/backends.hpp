// Builtin backend registration: wires the classical, annealer, and
// circuit adapters into a backend::Registry. Solver calls this from its
// constructor; tests call it to build registries against custom option
// blocks or devices.
#pragma once

#include "anneal/backend.hpp"
#include "anneal/topology.hpp"
#include "backend/registry.hpp"
#include "circuit/backend.hpp"
#include "graph/graph.hpp"

namespace nck {

/// Registers the three builtin adapters. All pointees are borrowed: they
/// must outlive the registry, and edits to the option blocks take effect
/// on the next solve.
void register_builtin_backends(backend::Registry& registry,
                               const AnnealBackendOptions* anneal_options,
                               const Device* device,
                               const CircuitBackendOptions* circuit_options,
                               const Graph* coupling);

}  // namespace nck
