#include "runtime/pool.hpp"

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace nck {
namespace {

/// Strict "a beats b" for the portfolio: a solve that ran beats one that
/// failed; among ran solves, better classification wins; ties keep the
/// earlier candidate (the caller scans left to right).
bool beats(const SolveReport& a, const SolveReport& b) {
  if (a.ran != b.ran) return a.ran;
  if (!a.ran) return false;
  return static_cast<int>(a.best_quality) < static_cast<int>(b.best_quality);
}

}  // namespace

SolverPool::SolverPool(PoolOptions options)
    : options_(std::move(options)),
      cache_(options_.shared_cache
                 ? options_.shared_cache
                 : std::make_shared<backend::PlanCache>(options_.cache_bytes)) {
}

BatchReport SolverPool::solve_all(std::span<const Env> envs,
                                  BackendKind backend) {
  const BackendKind kinds[] = {backend};
  return run(envs, kinds, /*portfolio=*/false);
}

BatchReport SolverPool::solve_portfolio(std::span<const Env> envs) {
  static constexpr BackendKind kDefaultCandidates[] = {
      BackendKind::kClassical, BackendKind::kAnnealer, BackendKind::kCircuit};
  return run(envs, kDefaultCandidates, /*portfolio=*/true);
}

BatchReport SolverPool::solve_portfolio(std::span<const Env> envs,
                                        std::span<const BackendKind> candidates) {
  return run(envs, candidates, /*portfolio=*/true);
}

BatchReport SolverPool::run(std::span<const Env> envs,
                            std::span<const BackendKind> candidates,
                            bool portfolio) {
  BatchReport batch;
  batch.reports.resize(envs.size());
  if (portfolio) batch.candidates.resize(envs.size());
  if (envs.empty() || candidates.empty()) {
    batch.cache = cache_->stats();
    return batch;
  }

  std::size_t workers = options_.num_threads;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers = std::min(workers, envs.size());

  // Work stealing by atomic ticket; every task writes only its own slots,
  // and the shared plan cache does its own locking.
  std::atomic<std::size_t> next{0};
  const auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= envs.size()) return;

      std::vector<SolveReport> runs;
      runs.reserve(candidates.size());
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        // One base seed for every solver: identical device calibration,
        // identical plan keys, shared plans. Only the sample stream is
        // per-(task, candidate).
        Solver solver(options_.seed);
        solver.annealer_options() = options_.annealer;
        solver.circuit_options() = options_.circuit;
        if (options_.resilience) {
          solver.resilience_options() = *options_.resilience;
        }
        if (options_.solve) solver.solve_options() = *options_.solve;
        solver.set_plan_cache(cache_);
        // A nonzero stream_salt re-derives the base before the per-(task,
        // candidate) finalizer, so salted batches stay schedule-independent
        // without perturbing the salt-free streams existing callers rely on.
        const std::uint64_t base =
            options_.stream_salt == 0
                ? options_.seed
                : stream_seed(options_.seed, options_.stream_salt);
        solver.reseed(stream_seed(base, i, c));
        runs.push_back(solver.solve(envs[i], candidates[c]));
      }

      std::size_t best = 0;
      for (std::size_t c = 1; c < runs.size(); ++c) {
        if (beats(runs[c], runs[best])) best = c;
      }
      batch.reports[i] =
          portfolio ? runs[best] : std::move(runs.front());
      if (portfolio) batch.candidates[i] = std::move(runs);
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) threads.emplace_back(work);
    for (std::thread& t : threads) t.join();
  }

  // Stitch per-task traces in input order (deterministic regardless of
  // the completion schedule).
  for (std::size_t i = 0; i < envs.size(); ++i) {
    if (portfolio) {
      for (std::size_t c = 0; c < batch.candidates[i].size(); ++c) {
        obs::merge_trace(batch.trace, batch.candidates[i][c].trace,
                         "task" + std::to_string(i) + ":" +
                             backend_name(candidates[c]));
      }
    } else {
      obs::merge_trace(batch.trace, batch.reports[i].trace,
                       "task" + std::to_string(i));
    }
  }
  batch.cache = cache_->stats();
  return batch;
}

}  // namespace nck
