// Result-quality classification (Definition 8): a solution over h hard and
// s soft constraints is *optimal* if all hard and the maximum possible
// number of soft constraints are satisfied, *suboptimal* if all hard but
// fewer than the maximum soft, and *incorrect* if any hard constraint is
// violated.
#pragma once

#include <string>
#include <vector>

#include "backend/kinds.hpp"  // re-exports BackendKind / backend_name
#include "core/env.hpp"

namespace nck {

enum class Quality { kOptimal, kSuboptimal, kIncorrect };

const char* quality_name(Quality q) noexcept;

/// Ground truth needed to classify: the maximum number of soft constraints
/// satisfiable subject to all hard constraints (from a classical solver).
struct GroundTruth {
  bool feasible = false;
  std::size_t best_soft_satisfied = 0;
};

/// Computes the ground truth with the native exact solver.
GroundTruth ground_truth(const Env& env);

Quality classify(const Evaluation& eval, const GroundTruth& truth) noexcept;

/// Classification summary over a whole sample batch (e.g. 100 annealer
/// reads or 4000 circuit shots).
struct QualityCounts {
  std::size_t optimal = 0;
  std::size_t suboptimal = 0;
  std::size_t incorrect = 0;

  std::size_t total() const noexcept {
    return optimal + suboptimal + incorrect;
  }
  double fraction_optimal() const noexcept {
    return total() ? static_cast<double>(optimal) / static_cast<double>(total())
                   : 0.0;
  }
  double fraction_correct() const noexcept {  // optimal + suboptimal
    return total() ? static_cast<double>(optimal + suboptimal) /
                         static_cast<double>(total())
                   : 0.0;
  }
  /// Did *any* sample achieve optimality? (The annealer success criterion:
  /// "the problem is considered to be solved correctly if any of the hundred
  /// solutions returned is optimal".)
  bool any_optimal() const noexcept { return optimal > 0; }
};

QualityCounts classify_all(const std::vector<Evaluation>& evals,
                           const GroundTruth& truth);

}  // namespace nck
