// Concurrent batch solver. SolverPool::solve_all dispatches a span of
// independent programs across a std::thread pool; every worker builds its
// task's Solver from one base seed (identical device calibration, hence
// identical plan keys) and re-seeds the sample stream per task, so batch
// results are bit-identical across runs and thread counts. All workers
// share one content-addressed PlanCache: the first task to need a QUBO
// synthesis, minor embedding, or transpilation pays for it, every later
// task reuses it.
//
// Portfolio mode races every candidate backend on each task (modeled —
// candidates run in-process with independent, deterministic streams) and
// keeps the best-classified result: ran beats failed, optimal beats
// suboptimal beats incorrect, earlier candidate order breaks ties.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "backend/plan_cache.hpp"
#include "runtime/solver.hpp"

namespace nck {

struct PoolOptions {
  /// Worker threads; 0 means hardware concurrency (at least 1).
  std::size_t num_threads = 0;
  /// Base seed: device calibration and per-task stream derivation. Two
  /// pools with the same options produce bit-identical batch reports.
  std::uint64_t seed = 1234;
  AnnealBackendOptions annealer;
  CircuitBackendOptions circuit;
  /// Resilience for every task solver; nullopt keeps each Solver's own
  /// default (which honors NCK_CHAOS=1).
  std::optional<ResilienceOptions> resilience;
  /// SolveOptions for every task solver; nullopt keeps the Solver default.
  /// The decomposer uses this to propagate its remaining wall budget into
  /// each round's sub-solves.
  std::optional<SolveOptions> solve;
  /// Extra salt mixed into every per-(task, candidate) stream seed. 0 (the
  /// default) keeps the historical streams; the decomposer sets the round
  /// number so each large-neighborhood round samples fresh streams while
  /// the base seed (and hence calibration + plan keys) stays fixed.
  std::uint64_t stream_salt = 0;
  /// LRU byte budget of the shared plan cache. Ignored when `shared_cache`
  /// is set.
  std::size_t cache_bytes = backend::PlanCache::kDefaultMaxBytes;
  /// Adopt an existing plan cache instead of creating a private one, so a
  /// pool can extend an outer solver's cache (the decomposer shares its
  /// parent Solver's cache: sub-plans survive across rounds and the parent
  /// observes the hit rate).
  std::shared_ptr<backend::PlanCache> shared_cache;
};

struct BatchReport {
  /// One report per input program, in input order. In portfolio mode this
  /// is the winning candidate's report (report.backend names the winner).
  std::vector<SolveReport> reports;
  /// Portfolio mode only: every candidate's report, per task, in
  /// candidate order. Empty for single-backend batches.
  std::vector<std::vector<SolveReport>> candidates;
  /// Shared plan-cache counters after the batch.
  backend::PlanCacheStats cache;
  /// Stitched trace: each task's spans re-parented under a "task<i>"
  /// root, counters summed across tasks (see obs::merge_trace).
  obs::TraceData trace;

  std::size_t solved() const noexcept {
    std::size_t n = 0;
    for (const SolveReport& r : reports) n += r.ran ? 1 : 0;
    return n;
  }
};

class SolverPool {
 public:
  explicit SolverPool(PoolOptions options = {});

  /// Solves every program on one backend kind.
  BatchReport solve_all(std::span<const Env> envs, BackendKind backend);

  /// Portfolio mode: races `candidates` (default: classical, annealer,
  /// circuit) on every task and keeps the best-classified result.
  BatchReport solve_portfolio(std::span<const Env> envs);
  BatchReport solve_portfolio(std::span<const Env> envs,
                              std::span<const BackendKind> candidates);

  PoolOptions& options() noexcept { return options_; }
  /// The shared cache (persists across solve_all calls: a second batch
  /// over the same programs is all hits).
  backend::PlanCache& plan_cache() noexcept { return *cache_; }

 private:
  BatchReport run(std::span<const Env> envs,
                  std::span<const BackendKind> candidates, bool portfolio);

  PoolOptions options_;
  std::shared_ptr<backend::PlanCache> cache_;
};

}  // namespace nck
