#include "runtime/backends.hpp"

#include <memory>

#include "anneal/adapter.hpp"
#include "circuit/adapter.hpp"
#include "classical/adapter.hpp"

namespace nck {

void register_builtin_backends(backend::Registry& registry,
                               const AnnealBackendOptions* anneal_options,
                               const Device* device,
                               const CircuitBackendOptions* circuit_options,
                               const Graph* coupling) {
  registry.add(std::make_unique<backend::ClassicalAdapter>());
  registry.add(
      std::make_unique<backend::AnnealAdapter>(anneal_options, device));
  registry.add(
      std::make_unique<backend::CircuitAdapter>(circuit_options, coupling));
}

}  // namespace nck
