// Unified solver facade over the three execution targets — the "portability
// across quantum devices" surface of the paper. One call dispatches a
// generalized NchooseK program to the classical solver, the (simulated)
// D-Wave annealer, or the (simulated) IBM circuit device, and reports a
// uniformly classified result.
//
// The solve path is resilient (see runtime/resilience.hpp): configure
// resilience_options() with a fault plan, a retry policy, a deadline, and
// a fallback chain, and solve() will retry transient session failures
// with modeled exponential backoff, re-embed around mid-session dead
// qubits, shrink sample budgets under deadline pressure, and degrade
// along the fallback chain before reporting a typed failure. NCK_CHAOS=1
// in the environment enables a fixed-seed fault schedule for every
// solver instance (the CI chaos job).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/certify.hpp"
#include "analysis/reduce/reduce.hpp"
#include "anneal/backend.hpp"
#include "backend/plan_cache.hpp"
#include "backend/registry.hpp"
#include "circuit/backend.hpp"
#include "core/env.hpp"
#include "decompose/decompose.hpp"
#include "obs/obs.hpp"
#include "runtime/resilience.hpp"
#include "runtime/result.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"

namespace nck {

struct SolveOptions {
  /// Semantically certify every constraint's QUBO (and the whole-program
  /// gap dominance) before dispatch. Certification failures abort the
  /// solve with kAnalysisRejected; the artifact is cached content-addressed
  /// in the plan cache, so warm solves of the same program re-check the
  /// dominance arithmetic without re-enumerating any assignment. While on,
  /// the heuristic NCK-P007 pass is suppressed in favor of its sound
  /// NCK-V001/V002 successors.
  bool certify = false;
  CertifyOptions certify_options;
  /// Run the abstract-interpretation presolve (analysis/dataflow +
  /// analysis/reduce) ahead of analysis and synthesis. On by default
  /// (opt-out). The solver then operates entirely on the reduced program —
  /// analysis, certification, ground truth, backend plan keys — and the
  /// recorded ReductionTrace lifts samples back to original-space
  /// assignments in the report. A reduction that fails its equivalence
  /// certification is rejected (NCK-D004 warning) and the original program
  /// is solved instead. A presolve-proved-unsat program is analyzed in its
  /// original form so the rejection carries the usual NCK-P001/P002/D003
  /// diagnostics.
  bool presolve = true;
  ReduceOptions reduce_options;
  /// Remaining *wall-clock* budget for this solve, in milliseconds,
  /// measured on the monotonic clock from solve() entry. Infinity (the
  /// default) means no wall deadline. This is deliberately distinct from
  /// RetryPolicy::deadline_ms, which is consumed against the *modeled*
  /// SessionClock (measured client time + modeled device time + modeled
  /// backoff waits) so fault-injection tests stay deterministic: a server
  /// propagating a client's latency budget needs real elapsed time, not
  /// modeled time. A budget that is already exhausted at entry (<= 0)
  /// fails fast with FailureKind::kDeadlineExhausted before any presolve,
  /// analysis, or backend work runs; mid-solve exhaustion is checked
  /// between stages and before every attempt (including the otherwise
  /// deadline-exempt classical rung — a caller past its wall deadline has
  /// no use for a late answer). NaN is rejected as kBadOptions.
  double wall_budget_ms = std::numeric_limits<double>::infinity();
  /// Exact-ground-truth ceiling. Programs with more variables than this
  /// defer Definition 8 truth to the solve's own best sample — the report's
  /// truth becomes that sample's evaluation, best_quality == kOptimal reads
  /// "the best sample of this solve", and SolveReport::truth_exact flips to
  /// false — instead of running the exponential classical certifier. The
  /// default (no ceiling) certifies every solve exactly, as before. The
  /// decomposer caps its sub-solves at decompose.truth_component_vars:
  /// the stitch re-evaluates every candidate against the whole program, so
  /// per-subproblem exact truth buys nothing at exponential cost.
  std::size_t truth_exact_max_vars = std::numeric_limits<std::size_t>::max();
  /// qbsolv-style large-neighborhood decomposition (DESIGN.md §3i). When
  /// enabled and the post-presolve program exceeds
  /// `decompose.subproblem_vars`, the solve partitions the variable-
  /// interaction graph into device-sized neighborhoods, clamps each
  /// neighborhood's boundary to the incumbent assignment, fans the clamped
  /// sub-programs across a SolverPool on the requested backend, stitches
  /// improving sub-results back, and iterates until no neighborhood
  /// improves, `max_rounds` is hit, or the wall budget binds. Programs at
  /// or under the cap take the ordinary whole-program path byte-for-byte,
  /// so enabling this is safe as a default. Hardware-level analysis runs
  /// per sub-QUBO inside each sub-solve; the whole-program report carries
  /// the program-level diagnostics plus an NCK-D005 note and a
  /// SolveReport::decompose summary.
  decompose::DecomposeOptions decompose;
};

struct SolveReport {
  /// Backend that produced the result; under fallback this is the rung
  /// that actually ran (the full path is in `resilience.attempts`).
  BackendKind backend = BackendKind::kClassical;
  bool ran = false;  // false: problem did not fit / embed / solve
  /// Typed cause of ran == false (kNone while ran == true); the retry and
  /// fallback machinery branches on this instead of string-matching.
  FailureKind failure = FailureKind::kNone;
  /// Human-readable specifics behind `failure` (may be empty).
  std::string failure_detail;
  /// Display string: the detail when present, else the generic
  /// description of `failure`; empty when the solve ran.
  std::string failure_message() const;
  /// Static-analysis findings gathered before dispatch: error diagnostics
  /// abort the solve (ran == false, failure == kAnalysisRejected), while
  /// warnings and notes ride along on successful solves.
  AnalysisReport analysis;
  /// Semantic certification artifact; engaged only when
  /// SolveOptions::certify was on (including cache-recalled solves). When
  /// presolve changed the program, the certificate covers the *reduced*
  /// form (the one actually dispatched).
  std::optional<ProgramCertificate> certificate;
  /// Presolve statistics; engaged only when SolveOptions::presolve ran and
  /// did something (reduced the program, proved it unsat, or was rejected).
  /// Identity presolves leave it disengaged.
  std::optional<PresolveSummary> presolve;
  /// Decomposition statistics; engaged only when the decompose stage ran
  /// (SolveOptions::decompose.enabled and the post-presolve program
  /// exceeded the per-subproblem cap). Carries per-round incumbent energy
  /// and sub-plan cache traffic.
  std::optional<decompose::DecomposeSummary> decompose;
  GroundTruth truth;         // classical ground truth used to classify
  /// True when `truth` came from the exact classical certifier; false when
  /// it was deferred to the solve's own best result (the program exceeded
  /// SolveOptions::truth_exact_max_vars, or a decomposed solve had an
  /// interaction component past decompose.truth_component_vars). Deferred
  /// truth makes kOptimal a "best found" statement, not a proof.
  bool truth_exact = true;
  /// Best sample (by classification then energy order of the backend).
  std::vector<bool> best_assignment;
  Quality best_quality = Quality::kIncorrect;
  QualityCounts counts;      // over all samples (classical: one sample)
  // Backend metrics (meaning depends on backend; 0 when not applicable):
  std::size_t qubits_used = 0;
  std::size_t circuit_depth = 0;
  std::size_t num_samples = 0;
  /// Modeled device/QPU time of the attempt that produced the result;
  /// cumulative session time lives in `resilience`.
  double backend_seconds = 0.0;
  /// Recovery story: every attempt, fault, retry, re-embed, degradation,
  /// and fallback of this solve. Empty when the first attempt succeeded
  /// with no resilience features active.
  ResilienceLog resilience;
  /// Per-stage spans and metrics recorded during this solve (wall-clock
  /// stage timings, synthesis cache counters, embedding and sampling
  /// statistics, modeled device times). Populated on every solve, including
  /// failed ones. Serialize with obs::trace_to_json / render with
  /// obs::print_trace.
  obs::TraceData trace;
};

class Solver {
 public:
  /// Shares one synthesis engine (and its pattern cache) across solves,
  /// like a long-lived NchooseK session. Honors NCK_CHAOS=1 by starting
  /// from ResilienceOptions::chaos_from_env().
  explicit Solver(std::uint64_t seed = 1234);

  /// Solves on the requested backend (retrying / degrading per
  /// resilience_options()) and classifies every sample.
  SolveReport solve(const Env& env, BackendKind backend);

  /// Re-seeds the per-solve sample stream without regenerating the device
  /// calibration. SolverPool workers construct solvers from one base seed
  /// (so every task sees the identical topology and plan keys) and then
  /// give each task its own schedule-independent stream.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  AnnealBackendOptions& annealer_options() noexcept { return anneal_options_; }
  CircuitBackendOptions& circuit_options() noexcept { return circuit_options_; }
  /// Fault injection, retry policy, deadline, and fallback chain.
  ResilienceOptions& resilience_options() noexcept { return resilience_; }
  /// Certification toggle and thresholds.
  SolveOptions& solve_options() noexcept { return solve_options_; }
  SynthEngine& engine() noexcept { return engine_; }
  /// Pre-dispatch static analyzer (tune thresholds via analyzer().options()).
  Analyzer& analyzer() noexcept { return analyzer_; }

  /// Execution backends the solve loop iterates. The builtin classical /
  /// annealer / circuit adapters are pre-registered; tests and embedders
  /// may add (or replace, latest-wins) backends.
  backend::Registry& backends() noexcept { return registry_; }

  /// Content-addressed plan cache consulted before every prepare. Each
  /// solver owns a private cache by default; share one across solvers
  /// (SolverPool does) via set_plan_cache. The synthesis engine is
  /// re-wired to the new cache's shared pattern memo.
  backend::PlanCache& plan_cache() noexcept { return *plan_cache_; }
  void set_plan_cache(std::shared_ptr<backend::PlanCache> cache);

 private:
  /// Per-solve pipeline state threaded through the explicit stage sequence
  /// (begin → presolve → analysis → certify → truth → dispatch-or-decompose
  /// → lift). Defined in solver.cpp.
  struct Stages;

  /// Body of solve(); the wrapper owns the trace and snapshots it into the
  /// report on every exit path. Runs the staged pipeline: whole-program
  /// dispatch is the trivial one-subproblem case, decomposition the
  /// many-subproblem one.
  void solve_impl(const Env& env, BackendKind backend, SolveReport& report,
                  obs::Trace& trace);
  /// Entry validation: false (with kBadOptions set) when the options for
  /// any backend on the (already deduplicated) solve chain are
  /// nonsensical. Delegates per-backend checks to Backend::validate.
  bool validate_options(const std::vector<BackendKind>& chain,
                        SolveReport& report) const;

  SynthEngine engine_;
  /// Construction seed, kept so the decompose stage can hand its
  /// SolverPool the same base (identical sub-solver calibration and plan
  /// keys) regardless of reseed() calls since.
  std::uint64_t seed_;
  Rng rng_;
  Device device_;
  Graph coupling_;
  Analyzer analyzer_;
  AnnealBackendOptions anneal_options_;
  CircuitBackendOptions circuit_options_;
  ResilienceOptions resilience_;
  SolveOptions solve_options_;
  backend::Registry registry_;
  std::shared_ptr<backend::PlanCache> plan_cache_;
};

}  // namespace nck
