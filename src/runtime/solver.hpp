// Unified solver facade over the three execution targets — the "portability
// across quantum devices" surface of the paper. One call dispatches a
// generalized NchooseK program to the classical solver, the (simulated)
// D-Wave annealer, or the (simulated) IBM circuit device, and reports a
// uniformly classified result.
#pragma once

#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "anneal/backend.hpp"
#include "circuit/backend.hpp"
#include "core/env.hpp"
#include "obs/obs.hpp"
#include "runtime/result.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"

namespace nck {

enum class BackendKind { kClassical, kAnnealer, kCircuit };

const char* backend_name(BackendKind kind) noexcept;

struct SolveReport {
  BackendKind backend = BackendKind::kClassical;
  bool ran = false;          // false: problem did not fit / embed / solve
  std::string failure;       // why ran == false
  /// Static-analysis findings gathered before dispatch: error diagnostics
  /// abort the solve (ran == false, failure carries their summary), while
  /// warnings and notes ride along on successful solves.
  AnalysisReport analysis;
  GroundTruth truth;         // classical ground truth used to classify
  /// Best sample (by classification then energy order of the backend).
  std::vector<bool> best_assignment;
  Quality best_quality = Quality::kIncorrect;
  QualityCounts counts;      // over all samples (classical: one sample)
  // Backend metrics (meaning depends on backend; 0 when not applicable):
  std::size_t qubits_used = 0;
  std::size_t circuit_depth = 0;
  std::size_t num_samples = 0;
  double backend_seconds = 0.0;  // modeled device/QPU time
  /// Per-stage spans and metrics recorded during this solve (wall-clock
  /// stage timings, synthesis cache counters, embedding and sampling
  /// statistics, modeled device times). Populated on every solve, including
  /// failed ones. Serialize with obs::trace_to_json / render with
  /// obs::print_trace.
  obs::TraceData trace;
};

class Solver {
 public:
  /// Shares one synthesis engine (and its pattern cache) across solves,
  /// like a long-lived NchooseK session.
  explicit Solver(std::uint64_t seed = 1234);

  /// Solves on the requested backend and classifies every sample.
  SolveReport solve(const Env& env, BackendKind backend);

  AnnealBackendOptions& annealer_options() noexcept { return anneal_options_; }
  CircuitBackendOptions& circuit_options() noexcept { return circuit_options_; }
  SynthEngine& engine() noexcept { return engine_; }
  /// Pre-dispatch static analyzer (tune thresholds via analyzer().options()).
  Analyzer& analyzer() noexcept { return analyzer_; }

 private:
  /// Body of solve(); the wrapper owns the trace and snapshots it into the
  /// report on every exit path.
  void solve_impl(const Env& env, BackendKind backend, SolveReport& report,
                  obs::Trace& trace);

  SynthEngine engine_;
  Rng rng_;
  Device device_;
  Graph coupling_;
  Analyzer analyzer_;
  AnnealBackendOptions anneal_options_;
  CircuitBackendOptions circuit_options_;
};

}  // namespace nck
