// Unified solver facade over the three execution targets — the "portability
// across quantum devices" surface of the paper. One call dispatches a
// generalized NchooseK program to the classical solver, the (simulated)
// D-Wave annealer, or the (simulated) IBM circuit device, and reports a
// uniformly classified result.
//
// The solve path is resilient (see runtime/resilience.hpp): configure
// resilience_options() with a fault plan, a retry policy, a deadline, and
// a fallback chain, and solve() will retry transient session failures
// with modeled exponential backoff, re-embed around mid-session dead
// qubits, shrink sample budgets under deadline pressure, and degrade
// along the fallback chain before reporting a typed failure. NCK_CHAOS=1
// in the environment enables a fixed-seed fault schedule for every
// solver instance (the CI chaos job).
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "analysis/analyzer.hpp"
#include "analysis/certify.hpp"
#include "analysis/reduce/reduce.hpp"
#include "anneal/backend.hpp"
#include "backend/plan_cache.hpp"
#include "backend/registry.hpp"
#include "circuit/backend.hpp"
#include "core/env.hpp"
#include "obs/obs.hpp"
#include "runtime/resilience.hpp"
#include "runtime/result.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"

namespace nck {

struct SolveOptions {
  /// Semantically certify every constraint's QUBO (and the whole-program
  /// gap dominance) before dispatch. Certification failures abort the
  /// solve with kAnalysisRejected; the artifact is cached content-addressed
  /// in the plan cache, so warm solves of the same program re-check the
  /// dominance arithmetic without re-enumerating any assignment. While on,
  /// the heuristic NCK-P007 pass is suppressed in favor of its sound
  /// NCK-V001/V002 successors.
  bool certify = false;
  CertifyOptions certify_options;
  /// Run the abstract-interpretation presolve (analysis/dataflow +
  /// analysis/reduce) ahead of analysis and synthesis. On by default
  /// (opt-out). The solver then operates entirely on the reduced program —
  /// analysis, certification, ground truth, backend plan keys — and the
  /// recorded ReductionTrace lifts samples back to original-space
  /// assignments in the report. A reduction that fails its equivalence
  /// certification is rejected (NCK-D004 warning) and the original program
  /// is solved instead. A presolve-proved-unsat program is analyzed in its
  /// original form so the rejection carries the usual NCK-P001/P002/D003
  /// diagnostics.
  bool presolve = true;
  ReduceOptions reduce_options;
  /// Remaining *wall-clock* budget for this solve, in milliseconds,
  /// measured on the monotonic clock from solve() entry. Infinity (the
  /// default) means no wall deadline. This is deliberately distinct from
  /// RetryPolicy::deadline_ms, which is consumed against the *modeled*
  /// SessionClock (measured client time + modeled device time + modeled
  /// backoff waits) so fault-injection tests stay deterministic: a server
  /// propagating a client's latency budget needs real elapsed time, not
  /// modeled time. A budget that is already exhausted at entry (<= 0)
  /// fails fast with FailureKind::kDeadlineExhausted before any presolve,
  /// analysis, or backend work runs; mid-solve exhaustion is checked
  /// between stages and before every attempt (including the otherwise
  /// deadline-exempt classical rung — a caller past its wall deadline has
  /// no use for a late answer). NaN is rejected as kBadOptions.
  double wall_budget_ms = std::numeric_limits<double>::infinity();
};

struct SolveReport {
  /// Backend that produced the result; under fallback this is the rung
  /// that actually ran (the full path is in `resilience.attempts`).
  BackendKind backend = BackendKind::kClassical;
  bool ran = false;  // false: problem did not fit / embed / solve
  /// Typed cause of ran == false (kNone while ran == true); the retry and
  /// fallback machinery branches on this instead of string-matching.
  FailureKind failure = FailureKind::kNone;
  /// Human-readable specifics behind `failure` (may be empty).
  std::string failure_detail;
  /// Display string: the detail when present, else the generic
  /// description of `failure`; empty when the solve ran.
  std::string failure_message() const;
  /// Static-analysis findings gathered before dispatch: error diagnostics
  /// abort the solve (ran == false, failure == kAnalysisRejected), while
  /// warnings and notes ride along on successful solves.
  AnalysisReport analysis;
  /// Semantic certification artifact; engaged only when
  /// SolveOptions::certify was on (including cache-recalled solves). When
  /// presolve changed the program, the certificate covers the *reduced*
  /// form (the one actually dispatched).
  std::optional<ProgramCertificate> certificate;
  /// Presolve statistics; engaged only when SolveOptions::presolve ran and
  /// did something (reduced the program, proved it unsat, or was rejected).
  /// Identity presolves leave it disengaged.
  std::optional<PresolveSummary> presolve;
  GroundTruth truth;         // classical ground truth used to classify
  /// Best sample (by classification then energy order of the backend).
  std::vector<bool> best_assignment;
  Quality best_quality = Quality::kIncorrect;
  QualityCounts counts;      // over all samples (classical: one sample)
  // Backend metrics (meaning depends on backend; 0 when not applicable):
  std::size_t qubits_used = 0;
  std::size_t circuit_depth = 0;
  std::size_t num_samples = 0;
  /// Modeled device/QPU time of the attempt that produced the result;
  /// cumulative session time lives in `resilience`.
  double backend_seconds = 0.0;
  /// Recovery story: every attempt, fault, retry, re-embed, degradation,
  /// and fallback of this solve. Empty when the first attempt succeeded
  /// with no resilience features active.
  ResilienceLog resilience;
  /// Per-stage spans and metrics recorded during this solve (wall-clock
  /// stage timings, synthesis cache counters, embedding and sampling
  /// statistics, modeled device times). Populated on every solve, including
  /// failed ones. Serialize with obs::trace_to_json / render with
  /// obs::print_trace.
  obs::TraceData trace;
};

class Solver {
 public:
  /// Shares one synthesis engine (and its pattern cache) across solves,
  /// like a long-lived NchooseK session. Honors NCK_CHAOS=1 by starting
  /// from ResilienceOptions::chaos_from_env().
  explicit Solver(std::uint64_t seed = 1234);

  /// Solves on the requested backend (retrying / degrading per
  /// resilience_options()) and classifies every sample.
  SolveReport solve(const Env& env, BackendKind backend);

  /// Re-seeds the per-solve sample stream without regenerating the device
  /// calibration. SolverPool workers construct solvers from one base seed
  /// (so every task sees the identical topology and plan keys) and then
  /// give each task its own schedule-independent stream.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  AnnealBackendOptions& annealer_options() noexcept { return anneal_options_; }
  CircuitBackendOptions& circuit_options() noexcept { return circuit_options_; }
  /// Fault injection, retry policy, deadline, and fallback chain.
  ResilienceOptions& resilience_options() noexcept { return resilience_; }
  /// Certification toggle and thresholds.
  SolveOptions& solve_options() noexcept { return solve_options_; }
  SynthEngine& engine() noexcept { return engine_; }
  /// Pre-dispatch static analyzer (tune thresholds via analyzer().options()).
  Analyzer& analyzer() noexcept { return analyzer_; }

  /// Execution backends the solve loop iterates. The builtin classical /
  /// annealer / circuit adapters are pre-registered; tests and embedders
  /// may add (or replace, latest-wins) backends.
  backend::Registry& backends() noexcept { return registry_; }

  /// Content-addressed plan cache consulted before every prepare. Each
  /// solver owns a private cache by default; share one across solvers
  /// (SolverPool does) via set_plan_cache. The synthesis engine is
  /// re-wired to the new cache's shared pattern memo.
  backend::PlanCache& plan_cache() noexcept { return *plan_cache_; }
  void set_plan_cache(std::shared_ptr<backend::PlanCache> cache);

 private:
  /// Body of solve(); the wrapper owns the trace and snapshots it into the
  /// report on every exit path.
  void solve_impl(const Env& env, BackendKind backend, SolveReport& report,
                  obs::Trace& trace);
  /// Entry validation: false (with kBadOptions set) when the options for
  /// any backend on the (already deduplicated) solve chain are
  /// nonsensical. Delegates per-backend checks to Backend::validate.
  bool validate_options(const std::vector<BackendKind>& chain,
                        SolveReport& report) const;

  SynthEngine engine_;
  Rng rng_;
  Device device_;
  Graph coupling_;
  Analyzer analyzer_;
  AnnealBackendOptions anneal_options_;
  CircuitBackendOptions circuit_options_;
  ResilienceOptions resilience_;
  SolveOptions solve_options_;
  backend::Registry registry_;
  std::shared_ptr<backend::PlanCache> plan_cache_;
};

}  // namespace nck
