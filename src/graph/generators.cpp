#include "graph/generators.hpp"

#include <stdexcept>

namespace nck {

Graph circulant_graph(std::size_t n, std::span<const std::size_t> offsets) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t o : offsets) {
      if (o == 0 || o >= n) continue;
      g.add_edge(static_cast<Graph::Vertex>(i),
                 static_cast<Graph::Vertex>((i + o) % n));
    }
  }
  return g;
}

Graph circulant_graph(std::size_t n, std::size_t degree) {
  if (degree % 2 != 0) {
    throw std::invalid_argument("circulant_graph: degree must be even");
  }
  std::vector<std::size_t> offsets;
  for (std::size_t o = 1; o <= degree / 2; ++o) offsets.push_back(o);
  return circulant_graph(n, offsets);
}

Graph vertex_scaling_graph(std::size_t num_vertices) {
  if (num_vertices == 0 || num_vertices % 3 != 0) {
    throw std::invalid_argument(
        "vertex_scaling_graph: size must be a positive multiple of 3");
  }
  Graph g(num_vertices);
  const std::size_t num_cliques = num_vertices / 3;
  for (std::size_t c = 0; c < num_cliques; ++c) {
    const auto base = static_cast<Graph::Vertex>(3 * c);
    g.add_edge(base, base + 1);
    g.add_edge(base, base + 2);
    g.add_edge(base + 1, base + 2);
    if (c > 0) {
      // Two edges back to the previous triangle, per Section VII.
      g.add_edge(base - 3, base);
      g.add_edge(base - 2, base + 1);
    }
  }
  return g;
}

Graph edge_scaling_graph(std::size_t extra_edges) {
  constexpr std::size_t kVertices = 12;
  Graph g(kVertices);
  // Four disjoint triangles: {0,1,2} {3,4,5} {6,7,8} {9,10,11}.
  for (std::size_t c = 0; c < 4; ++c) {
    const auto base = static_cast<Graph::Vertex>(3 * c);
    g.add_edge(base, base + 1);
    g.add_edge(base, base + 2);
    g.add_edge(base + 1, base + 2);
  }
  // Deterministic inter-clique fill: iterate over vertex pairs grouped by
  // clique distance so early extra edges connect neighbouring triangles
  // (mirroring the paper's 18-edge starting point of 12 + 6 connectors).
  std::size_t added = 0;
  for (std::size_t stride = 1; stride < 4 && added < extra_edges; ++stride) {
    for (std::size_t c = 0; c + stride < 4 && added < extra_edges; ++c) {
      for (std::size_t i = 0; i < 3 && added < extra_edges; ++i) {
        for (std::size_t j = 0; j < 3 && added < extra_edges; ++j) {
          const auto u = static_cast<Graph::Vertex>(3 * c + i);
          const auto v = static_cast<Graph::Vertex>(3 * (c + stride) + j);
          if (g.add_edge(u, v)) ++added;
        }
      }
    }
  }
  return g;
}

Graph random_gnm(std::size_t n, std::size_t m, Rng& rng) {
  const std::size_t max_edges = n * (n - 1) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("random_gnm: too many edges requested");
  }
  Graph g(n);
  std::size_t added = 0;
  while (added < m) {
    const auto u = static_cast<Graph::Vertex>(rng.below(n));
    const auto v = static_cast<Graph::Vertex>(rng.below(n));
    if (u != v && g.add_edge(u, v)) ++added;
  }
  return g;
}

Graph random_connected_gnm(std::size_t n, std::size_t m, Rng& rng) {
  if (n > 0 && m + 1 < n) {
    throw std::invalid_argument("random_connected_gnm: m < n - 1");
  }
  const std::size_t max_edges = n * (n - 1) / 2;
  if (m > max_edges) {
    throw std::invalid_argument("random_connected_gnm: too many edges");
  }
  Graph g(n);
  // Random spanning tree: attach each new vertex to a random earlier one.
  std::vector<Graph::Vertex> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<Graph::Vertex>(i);
  rng.shuffle(order);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(order[i], order[rng.below(i)]);
  }
  std::size_t added = n > 0 ? n - 1 : 0;
  while (added < m) {
    const auto u = static_cast<Graph::Vertex>(rng.below(n));
    const auto v = static_cast<Graph::Vertex>(rng.below(n));
    if (u != v && g.add_edge(u, v)) ++added;
  }
  return g;
}

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_edge(static_cast<Graph::Vertex>(i), static_cast<Graph::Vertex>(j));
    }
  }
  return g;
}

Graph cycle_graph(std::size_t n) {
  Graph g(n);
  if (n < 3) {
    if (n == 2) g.add_edge(0, 1);
    return g;
  }
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<Graph::Vertex>(i),
               static_cast<Graph::Vertex>((i + 1) % n));
  }
  return g;
}

Graph path_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<Graph::Vertex>(i), static_cast<Graph::Vertex>(i + 1));
  }
  return g;
}

Graph star_graph(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) {
    g.add_edge(0, static_cast<Graph::Vertex>(i));
  }
  return g;
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Graph::Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph region_map_graph(std::size_t rows, std::size_t cols, double diag_p,
                       Rng& rng) {
  Graph g = grid_graph(rows, cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Graph::Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r + 1 < rows; ++r) {
    for (std::size_t c = 0; c + 1 < cols; ++c) {
      if (rng.bernoulli(diag_p)) g.add_edge(id(r, c), id(r + 1, c + 1));
    }
  }
  return g;
}

}  // namespace nck
