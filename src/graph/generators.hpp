// Graph and instance generators matching the paper's experimental setup
// (Section VII): circulant graphs for the Z3 timing study (Fig 12), the
// vertex-scaling study (cliques of three chained by two edges), and the
// edge-scaling study (12 vertices, growing edge count).
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace nck {

/// Circulant graph C_n(offsets): vertex i is adjacent to i +- o (mod n)
/// for each offset o. Used for the minimum-vertex-cover Z3 scaling study;
/// offsets {1, 2, ..., d/2} gives a degree-d circulant as in Fig 12.
Graph circulant_graph(std::size_t n, std::span<const std::size_t> offsets);

/// Degree-d circulant with offsets 1..d/2 (d must be even, d < n).
Graph circulant_graph(std::size_t n, std::size_t degree);

/// The paper's vertex-scaling family: starts from one triangle (3-clique);
/// each growth step appends another triangle connected to the previous one
/// by two edges, up to `num_vertices` (must be a positive multiple of 3).
Graph vertex_scaling_graph(std::size_t num_vertices);

/// The paper's edge-scaling family: 12 vertices arranged as four disjoint
/// triangles (coverable by 4 cliques, 12 intra-clique edges is 12... the
/// paper starts from 18 edges), then `extra_edges` additional edges added
/// deterministically between cliques in round-robin order. Total edges is
/// 12 + extra_edges, capped at the complete graph.
Graph edge_scaling_graph(std::size_t extra_edges);

/// Erdos-Renyi G(n, m): n vertices, m distinct random edges.
Graph random_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Random connected G(n, m): builds a random spanning tree first.
/// Requires m >= n - 1.
Graph random_connected_gnm(std::size_t n, std::size_t m, Rng& rng);

/// Complete graph K_n.
Graph complete_graph(std::size_t n);

/// Cycle C_n.
Graph cycle_graph(std::size_t n);

/// Path P_n.
Graph path_graph(std::size_t n);

/// Star S_n (vertex 0 is the hub, n total vertices).
Graph star_graph(std::size_t n);

/// 2D grid graph with `rows` x `cols` vertices.
Graph grid_graph(std::size_t rows, std::size_t cols);

/// A planar-style "map" for the map-coloring experiments: a rows x cols grid
/// of regions where each region is adjacent to its right/down neighbours and,
/// with probability `diag_p`, the down-right diagonal (still 4-colorable).
Graph region_map_graph(std::size_t rows, std::size_t cols, double diag_p,
                       Rng& rng);

}  // namespace nck
