#include "graph/algorithms.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace nck {

bool is_vertex_cover(const Graph& g, const std::vector<bool>& in_cover) {
  if (in_cover.size() != g.num_vertices()) return false;
  for (const auto& [u, v] : g.edges()) {
    if (!in_cover[u] && !in_cover[v]) return false;
  }
  return true;
}

std::size_t cut_size(const Graph& g, const std::vector<bool>& side) {
  std::size_t cut = 0;
  for (const auto& [u, v] : g.edges()) {
    if (side[u] != side[v]) ++cut;
  }
  return cut;
}

bool is_proper_coloring(const Graph& g, std::span<const int> color,
                        int num_colors) {
  if (color.size() != g.num_vertices()) return false;
  for (std::size_t v = 0; v < color.size(); ++v) {
    if (color[v] < 0 || color[v] >= num_colors) return false;
  }
  for (const auto& [u, v] : g.edges()) {
    if (color[u] == color[v]) return false;
  }
  return true;
}

bool is_clique_cover(const Graph& g, std::span<const int> color,
                     int num_colors) {
  if (color.size() != g.num_vertices()) return false;
  for (std::size_t v = 0; v < color.size(); ++v) {
    if (color[v] < 0 || color[v] >= num_colors) return false;
  }
  const auto n = static_cast<Graph::Vertex>(g.num_vertices());
  for (Graph::Vertex u = 0; u < n; ++u) {
    for (Graph::Vertex v = u + 1; v < n; ++v) {
      if (color[u] == color[v] && !g.has_edge(u, v)) return false;
    }
  }
  return true;
}

namespace {

// Branch and bound for minimum vertex cover: repeatedly pick an uncovered
// edge and branch on which endpoint joins the cover.
struct VcSearch {
  const Graph& g;
  std::vector<bool> in_cover;
  std::size_t best;

  explicit VcSearch(const Graph& g_) : g(g_), in_cover(g_.num_vertices(), false) {
    const auto greedy = greedy_vertex_cover(g);
    best = static_cast<std::size_t>(
        std::count(greedy.begin(), greedy.end(), true));
  }

  std::optional<Graph::Edge> uncovered_edge() const {
    for (const auto& e : g.edges()) {
      if (!in_cover[e.first] && !in_cover[e.second]) return e;
    }
    return std::nullopt;
  }

  void search(std::size_t size) {
    if (size >= best) return;
    const auto e = uncovered_edge();
    if (!e) {
      best = size;
      return;
    }
    for (Graph::Vertex v : {e->first, e->second}) {
      in_cover[v] = true;
      search(size + 1);
      in_cover[v] = false;
    }
  }
};

}  // namespace

std::size_t minimum_vertex_cover_size(const Graph& g) {
  VcSearch s(g);
  s.search(0);
  return s.best;
}

namespace {

// Max cut branch and bound: assign vertices in order; bound assumes every
// undecided edge could still be cut.
struct CutSearch {
  const Graph& g;
  std::vector<int> side;  // -1 undecided, 0/1 assigned
  std::size_t best = 0;

  explicit CutSearch(const Graph& g_) : g(g_), side(g_.num_vertices(), -1) {}

  void search(std::size_t v, std::size_t cut, std::size_t undecided_edges) {
    if (cut + undecided_edges <= best) return;
    if (v == g.num_vertices()) {
      best = std::max(best, cut);
      return;
    }
    for (int s = 0; s <= (v == 0 ? 0 : 1); ++s) {  // fix vertex 0 to break symmetry
      side[v] = s;
      std::size_t new_cut = cut;
      std::size_t resolved = 0;
      for (Graph::Vertex w : g.neighbors(static_cast<Graph::Vertex>(v))) {
        if (side[w] != -1 && w < v) {
          ++resolved;
          if (side[w] != s) ++new_cut;
        }
      }
      // Edges from v to already-assigned lower-index vertices become decided.
      search(v + 1, new_cut, undecided_edges - resolved);
      side[v] = -1;
    }
  }
};

}  // namespace

std::size_t maximum_cut_size(const Graph& g) {
  if (g.num_vertices() == 0) return 0;
  CutSearch s(g);
  s.search(0, 0, g.num_edges());
  return s.best;
}

namespace {

bool color_search(const Graph& g, std::span<const Graph::Vertex> order,
                  std::vector<int>& color, int k, std::size_t idx) {
  if (idx == order.size()) return true;
  const Graph::Vertex v = order[idx];
  // Symmetry breaking: vertex may only use colors 0..min(idx, k-1).
  const int limit = std::min<int>(k - 1, static_cast<int>(idx));
  for (int c = 0; c <= limit; ++c) {
    bool ok = true;
    for (Graph::Vertex w : g.neighbors(v)) {
      if (color[w] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    color[v] = c;
    if (color_search(g, order, color, k, idx + 1)) return true;
    color[v] = -1;
  }
  return false;
}

}  // namespace

bool k_colorable(const Graph& g, int k) {
  if (k <= 0) return g.num_vertices() == 0;
  std::vector<Graph::Vertex> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Graph::Vertex a, Graph::Vertex b) {
    return g.degree(a) > g.degree(b);
  });
  std::vector<int> color(g.num_vertices(), -1);
  return color_search(g, order, color, k, 0);
}

int chromatic_number(const Graph& g, int max_k) {
  if (g.num_vertices() == 0) return 0;
  for (int k = 1; k <= max_k; ++k) {
    if (k_colorable(g, k)) return k;
  }
  throw std::runtime_error("chromatic_number: exceeds max_k");
}

bool clique_coverable(const Graph& g, int k) {
  // Clique cover of G == proper coloring of the complement of G.
  Graph complement(g.num_vertices());
  for (const auto& [u, v] : g.complement_edges()) complement.add_edge(u, v);
  return k_colorable(complement, k);
}

int clique_cover_number(const Graph& g, int max_k) {
  if (g.num_vertices() == 0) return 0;
  for (int k = 1; k <= max_k; ++k) {
    if (clique_coverable(g, k)) return k;
  }
  throw std::runtime_error("clique_cover_number: exceeds max_k");
}

std::vector<bool> greedy_vertex_cover(const Graph& g) {
  std::vector<bool> cover(g.num_vertices(), false);
  for (const auto& [u, v] : g.edges()) {
    if (!cover[u] && !cover[v]) {
      cover[u] = true;
      cover[v] = true;
    }
  }
  return cover;
}

std::vector<int> greedy_coloring(const Graph& g) {
  std::vector<int> color(g.num_vertices(), -1);
  std::vector<Graph::Vertex> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](Graph::Vertex a, Graph::Vertex b) {
    return g.degree(a) > g.degree(b);
  });
  for (Graph::Vertex v : order) {
    std::vector<bool> used(g.num_vertices() + 1, false);
    for (Graph::Vertex w : g.neighbors(v)) {
      if (color[w] >= 0) used[static_cast<std::size_t>(color[w])] = true;
    }
    int c = 0;
    while (used[static_cast<std::size_t>(c)]) ++c;
    color[v] = c;
  }
  return color;
}

std::vector<std::vector<Graph::Vertex>> balanced_partition(
    const Graph& g, std::size_t max_part_size) {
  if (max_part_size == 0) {
    throw std::invalid_argument("balanced_partition: max_part_size == 0");
  }
  const std::size_t n = g.num_vertices();

  // Connected components in lowest-member order (BFS from each unvisited
  // vertex in id order keeps everything deterministic).
  std::vector<bool> visited(n, false);
  std::vector<std::vector<Graph::Vertex>> components;
  std::vector<Graph::Vertex> queue;
  for (Graph::Vertex s = 0; s < n; ++s) {
    if (visited[s]) continue;
    std::vector<Graph::Vertex> comp;
    visited[s] = true;
    queue.assign(1, s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Graph::Vertex u = queue[head];
      comp.push_back(u);
      for (Graph::Vertex w : g.neighbors(u)) {
        if (!visited[w]) {
          visited[w] = true;
          queue.push_back(w);
        }
      }
    }
    components.push_back(std::move(comp));
  }

  std::vector<std::vector<Graph::Vertex>> parts;
  // First-fit packing of whole small components: independent sub-QUBOs can
  // share a part (a part of mutually independent pieces solves each piece
  // to its local optimum in one shot).
  for (const std::vector<Graph::Vertex>& comp : components) {
    if (comp.size() > max_part_size) continue;
    bool placed = false;
    for (std::vector<Graph::Vertex>& part : parts) {
      if (part.size() + comp.size() <= max_part_size) {
        part.insert(part.end(), comp.begin(), comp.end());
        placed = true;
        break;
      }
    }
    if (!placed) parts.emplace_back(comp);
  }
  // Oversized components: BFS from the lowest-id member, cutting a part
  // whenever the cap fills. BFS keeps each chunk a contiguous neighborhood,
  // which minimizes the clamped boundary a sub-QUBO inherits.
  for (const std::vector<Graph::Vertex>& comp : components) {
    if (comp.size() <= max_part_size) continue;
    std::vector<Graph::Vertex> chunk;
    chunk.reserve(max_part_size);
    for (Graph::Vertex u : comp) {  // comp is already in BFS order
      chunk.push_back(u);
      if (chunk.size() == max_part_size) {
        parts.push_back(std::move(chunk));
        chunk.clear();
      }
    }
    if (!chunk.empty()) parts.push_back(std::move(chunk));
  }
  for (std::vector<Graph::Vertex>& part : parts) {
    std::sort(part.begin(), part.end());
  }
  return parts;
}

}  // namespace nck
