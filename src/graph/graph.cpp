#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace nck {

Graph::Graph(std::size_t num_vertices) : adjacency_(num_vertices) {}

Graph::Vertex Graph::add_vertex() {
  adjacency_.emplace_back();
  return static_cast<Vertex>(adjacency_.size() - 1);
}

bool Graph::add_edge(Vertex u, Vertex v) {
  if (u >= num_vertices() || v >= num_vertices()) {
    throw std::out_of_range("Graph::add_edge: vertex out of range");
  }
  if (u == v || has_edge(u, v)) return false;
  if (u > v) std::swap(u, v);
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  edges_.emplace_back(u, v);
  return true;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= num_vertices() || v >= num_vertices()) return false;
  const auto& smaller =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const Vertex other = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), other) != smaller.end();
}

std::vector<Graph::Edge> Graph::complement_edges() const {
  std::vector<Edge> result;
  const auto n = static_cast<Vertex>(num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (!has_edge(u, v)) result.emplace_back(u, v);
    }
  }
  return result;
}

bool Graph::connected() const {
  if (num_vertices() == 0) return true;
  std::vector<bool> seen(num_vertices(), false);
  std::vector<Vertex> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const Vertex v = stack.back();
    stack.pop_back();
    for (Vertex w : adjacency_[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++count;
        stack.push_back(w);
      }
    }
  }
  return count == num_vertices();
}

Graph Graph::induced_subgraph(std::span<const Vertex> keep) const {
  std::vector<std::int64_t> remap(num_vertices(), -1);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    remap[keep[i]] = static_cast<std::int64_t>(i);
  }
  Graph sub(keep.size());
  for (const auto& [u, v] : edges_) {
    if (remap[u] >= 0 && remap[v] >= 0) {
      sub.add_edge(static_cast<Vertex>(remap[u]), static_cast<Vertex>(remap[v]));
    }
  }
  return sub;
}

UnionFind::UnionFind(std::size_t n) : parent_(n), size_(n, 1), num_sets_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) noexcept {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) noexcept {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (size_[a] < size_[b]) std::swap(a, b);
  parent_[b] = a;
  size_[a] += size_[b];
  --num_sets_;
  return true;
}

}  // namespace nck
