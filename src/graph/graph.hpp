// Simple undirected graph used throughout the problem encoders, the
// embedding engine and the device topologies.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace nck {

/// Undirected simple graph with contiguous vertex ids [0, num_vertices).
/// Stores both an adjacency list (for traversal) and an edge list (for
/// iteration in deterministic order). Self-loops and parallel edges are
/// rejected.
class Graph {
 public:
  using Vertex = std::uint32_t;
  using Edge = std::pair<Vertex, Vertex>;  // always stored with first < second

  Graph() = default;
  explicit Graph(std::size_t num_vertices);

  std::size_t num_vertices() const noexcept { return adjacency_.size(); }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Appends an isolated vertex and returns its id.
  Vertex add_vertex();

  /// Adds edge {u, v}. Returns false (and does nothing) if the edge already
  /// exists or u == v. Both endpoints must be existing vertices.
  bool add_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const noexcept;

  std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return adjacency_[v];
  }
  std::size_t degree(Vertex v) const noexcept { return adjacency_[v].size(); }

  std::span<const Edge> edges() const noexcept { return edges_; }

  /// All vertex pairs {u, v}, u < v, that are *not* edges (needed by the
  /// clique-cover encoding, which constrains absent edges).
  std::vector<Edge> complement_edges() const;

  /// True if every vertex is reachable from vertex 0 (or the graph is empty).
  bool connected() const;

  /// Induced subgraph on `keep` (ids are remapped to 0..keep.size()-1,
  /// in the order given).
  Graph induced_subgraph(std::span<const Vertex> keep) const;

 private:
  std::vector<std::vector<Vertex>> adjacency_;
  std::vector<Edge> edges_;
};

/// Disjoint-set forest with union by size and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x) noexcept;
  /// Returns true if the two elements were in different sets.
  bool unite(std::size_t a, std::size_t b) noexcept;
  std::size_t num_sets() const noexcept { return num_sets_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
  std::size_t num_sets_;
};

}  // namespace nck
