// Classical graph routines used to verify quantum results (Definition 8
// classification needs ground truths) and to seed greedy baselines.
#pragma once

#include <optional>
#include <vector>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace nck {

/// True if `in_cover[v]` (one flag per vertex) covers every edge.
bool is_vertex_cover(const Graph& g, const std::vector<bool>& in_cover);

/// Number of cut edges for the given side assignment.
std::size_t cut_size(const Graph& g, const std::vector<bool>& side);

/// True if `color` (one entry per vertex, values in [0, num_colors)) is a
/// proper coloring: no edge joins two same-colored vertices.
bool is_proper_coloring(const Graph& g, std::span<const int> color,
                        int num_colors);

/// True if `color` is a clique cover with `num_colors` classes: every pair
/// of same-colored vertices must be adjacent.
bool is_clique_cover(const Graph& g, std::span<const int> color,
                     int num_colors);

/// Exact minimum vertex cover size via branch and bound (exponential; fine
/// for the study sizes <= ~60 vertices with pruning).
std::size_t minimum_vertex_cover_size(const Graph& g);

/// Exact maximum cut value via branch and bound with a greedy bound
/// (exponential; intended for n <= ~30).
std::size_t maximum_cut_size(const Graph& g);

/// Exact chromatic-style test: can the graph be properly colored with k
/// colors? Backtracking with degree-ordered vertices.
bool k_colorable(const Graph& g, int k);

/// Smallest k such that the graph is k-colorable (>= 1; 0 for empty graph).
int chromatic_number(const Graph& g, int max_k = 16);

/// Can the vertices be partitioned into at most k cliques? (Equivalent to
/// k-coloring the complement graph.)
bool clique_coverable(const Graph& g, int k);

/// Smallest clique-cover size (clique cover number).
int clique_cover_number(const Graph& g, int max_k = 16);

/// Greedy 2-approximation for vertex cover (edge matching heuristic);
/// useful as an upper bound inside the exact search and as a baseline.
std::vector<bool> greedy_vertex_cover(const Graph& g);

/// Greedy coloring in the given vertex order (first-fit). Returns colors.
std::vector<int> greedy_coloring(const Graph& g);

/// Deterministic balanced partition into parts of at most `max_part_size`
/// vertices, grown by BFS so each part is as locality-preserving as the
/// graph allows (the qbsolv-style decomposition seam: vertices are QUBO
/// variables, edges are quadratic couplings, and a part is one sub-QUBO).
/// Whole connected components smaller than the cap are packed together
/// first-fit — independent components never force extra parts — while
/// oversized components are split by BFS from their lowest-id vertex.
/// Every vertex appears in exactly one part; parts and their members are
/// in deterministic (lowest-seed, BFS-discovery) order. Requires
/// max_part_size >= 1.
std::vector<std::vector<Graph::Vertex>> balanced_partition(
    const Graph& g, std::size_t max_part_size);

}  // namespace nck
