// Pluggable execution-backend interface (DESIGN.md §3d).
//
// Every execution target — the classical exact solver, the simulated
// D-Wave annealer, the simulated IBM circuit device — implements this
// interface as a thin adapter over its pipeline, split into two halves:
//
//   prepare(ctx)       the expensive, *deterministic* client-side work
//                      (QUBO synthesis, minor embedding, transpilation),
//                      producing an immutable Plan that the content-
//                      addressed PlanCache may reuse across solves,
//                      solvers, and threads;
//   execute(plan, ctx) the cheap, stochastic device-side work (fault
//                      gates, noisy sampling, timing models) that runs
//                      on every attempt.
//
// The runtime solve loop is backend-agnostic: it looks plans up by
// plan_key(), retries/degrades via the Budget hooks, and never switches
// on BackendKind. Registering a new Backend in the backend::Registry is
// all it takes to add an execution target.
//
// Determinism contract:
//  * plan_key() must cover the program structure, the (possibly degraded)
//    hardware topology, and every option prepare() reads — and nothing
//    execute()-only (sample budgets, noise, timing), so degraded retries
//    and warmed caches still hit.
//  * prepare() must not consume caller randomness; adapters derive any
//    internal RNG from the plan key, so a cached plan is bit-identical
//    to a freshly prepared one regardless of which solve built it.
//  * execute() must not touch ctx.rng before its fault gates pass, so an
//    attempt that is rejected at submission leaves the solve's sample
//    stream untouched (a solve preceded by rejected attempts samples
//    exactly like a clean solve).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "analysis/analyzer.hpp"
#include "backend/fingerprint.hpp"
#include "backend/kinds.hpp"
#include "backend/plan.hpp"
#include "core/env.hpp"
#include "obs/obs.hpp"
#include "resilience/fault.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"

namespace nck::backend {

/// Kind-agnostic view of ResilienceOptions' degradation floors; each
/// adapter picks the floor that applies to itself.
struct SampleFloors {
  std::size_t min_reads = 10;   // annealer floor
  std::size_t min_shots = 100;  // circuit floor
};

/// Per-attempt sample budget, degraded under deadline pressure.
struct Budget {
  std::size_t samples = 1;      // annealer reads / circuit shots / 1
  std::size_t aux = 0;          // circuit optimizer evaluations; else unused
  std::size_t min_samples = 1;  // degradation floors (never shrunk below)
  std::size_t min_aux = 0;
};

/// Inputs of the prepare stage. `device` overrides the adapter's own
/// topology (the solver passes its degraded copy after dead-qubit
/// events); null means the adapter's configured device.
struct PrepareContext {
  const Env* env = nullptr;
  SynthEngine* engine = nullptr;  // wired to the shared synthesis cache
  obs::Trace* trace = nullptr;
  const Device* device = nullptr;
  /// plan_key(*this), filled by the solve loop before prepare() so the
  /// adapter can derive its content-addressed internal RNG from it.
  Fingerprint key;
};

/// prepare() either yields a cacheable plan or a typed failure
/// (kNoEmbedding, kDeviceTooSmall, ...). Failures are never cached.
struct PrepareOutcome {
  PlanPtr plan;  // null iff failure != kNone
  FailureKind failure = FailureKind::kNone;
  std::string detail;
};

/// Inputs of the execute stage for one attempt.
struct ExecuteContext {
  /// Per-solve sample stream. Adapters must not consume it before their
  /// fault gates pass (see the determinism contract above).
  Rng* rng = nullptr;
  obs::Trace* trace = nullptr;
  FaultInjector* faults = nullptr;  // null = no injection
  Budget budget;
};

/// What one execute() attempt produced. On failure != kNone the sample
/// vectors are empty and `dead_qubits` may carry the qubits a
/// kDeadQubits event killed (the solver degrades its device copy and
/// re-prepares, which the changed plan key forces naturally).
struct ExecutionResult {
  FailureKind failure = FailureKind::kNone;
  std::string detail;
  /// Samples over the program variables, in the backend's reporting
  /// order, with matching evaluations.
  std::vector<std::vector<bool>> samples;
  std::vector<Evaluation> evaluations;
  /// True when samples.front() *is* the backend's answer (classical
  /// witness, circuit lowest-energy sample); false when the best sample
  /// should be chosen by classification (annealer reads).
  bool single_answer = false;
  std::size_t qubits_used = 0;
  std::size_t circuit_depth = 0;
  double device_seconds = 0.0;  // modeled device/QPU time of this attempt
  std::vector<std::size_t> dead_qubits;
};

class Backend {
 public:
  virtual ~Backend() = default;

  virtual BackendKind kind() const noexcept = 0;
  /// Stable short name, also the obs span wrapping each attempt
  /// ("classical", "anneal", "circuit").
  virtual const char* name() const noexcept = 0;

  /// Entry validation of this backend's own options. False (with an
  /// explanation in `why`) surfaces as FailureKind::kBadOptions.
  virtual bool validate(std::string* why) const = 0;

  /// Hardware target for the pre-dispatch static analyzer.
  virtual AnalysisTarget analysis_target() const noexcept = 0;

  /// Content address of the plan prepare() would build: program
  /// structure + topology + every prepare-relevant option.
  virtual Fingerprint plan_key(const PrepareContext& ctx) const = 0;

  virtual PrepareOutcome prepare(const PrepareContext& ctx) const = 0;

  virtual ExecutionResult execute(const Plan& plan,
                                  ExecuteContext& ctx) const = 0;

  /// Starting budget from the adapter's options plus the caller's floors.
  virtual Budget initial_budget(const SampleFloors& floors) const noexcept = 0;

  /// Modeled cost of one attempt at this budget, for the deadline gate.
  virtual double estimate_attempt_ms(const Budget& budget) const noexcept {
    (void)budget;
    return 0.0;
  }

  /// One degradation-ladder step (halve toward the floors). Returns false
  /// when nothing can shrink further.
  virtual bool degrade(Budget& budget) const noexcept {
    (void)budget;
    return false;
  }

  /// Deadline-exempt backends (the classical last resort) are dispatched
  /// even when the session budget is exhausted — they cost no modeled
  /// device time and exist precisely to land the solve.
  virtual bool deadline_exempt() const noexcept { return false; }
};

}  // namespace nck::backend
