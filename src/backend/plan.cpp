#include "backend/plan.hpp"

// Plan is an interface with a defaulted virtual destructor; this TU
// exists so the library has a home object for its vtable-adjacent
// diagnostics and future non-inline members.

namespace nck::backend {}  // namespace nck::backend
