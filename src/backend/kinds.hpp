// Backend identities and typed failure causes — the vocabulary shared by
// the pluggable backend interface (backend/backend.hpp), the resilience
// layer, and the runtime solver. These used to live in runtime/result.hpp
// and runtime/resilience.hpp; they sit here, below the adapters, so that
// backend implementations in src/anneal, src/circuit, and src/classical
// can name kinds and failures without linking the runtime.
//
// runtime/result.hpp and runtime/resilience.hpp re-export everything, so
// existing includes keep working unchanged.
#pragma once

#include "resilience/fault.hpp"

namespace nck {

/// The three execution targets of the paper's portability claim.
enum class BackendKind { kClassical, kAnnealer, kCircuit };

const char* backend_name(BackendKind kind) noexcept;

/// Why a solve (or one attempt of it) did not produce samples. Callers
/// and the retry logic branch on this instead of string-matching;
/// SolveReport::failure_message() keeps the human-readable story.
enum class FailureKind {
  kNone = 0,           // the solve ran
  kBadOptions,         // rejected at entry: nonsensical backend options
  kAnalysisRejected,   // static analysis proved the solve cannot succeed
  kInfeasible,         // hard constraints conflict (ground truth)
  kNoEmbedding,        // no minor embedding on the working graph
  kDeviceTooSmall,     // more QUBO variables than physical qubits
  kNoSamples,          // backend produced an empty sample set
  kJobRejected,        // injected: scheduler refused the job
  kQueueTimeout,       // injected: queue wait exceeded the limit
  kDeadQubits,         // injected: embedded qubits died mid-session
  kExecutionError,     // injected: transient circuit-execution failure
  kRetriesExhausted,   // transient failures outlasted the retry budget
  kDeadlineExhausted,  // the session deadline ran out
};

/// "dead-qubits", "retries-exhausted", ... — stable identifier.
const char* failure_kind_name(FailureKind kind) noexcept;
/// One-sentence display description ("no minor embedding found ...").
const char* failure_kind_description(FailureKind kind) noexcept;
/// Transient failures may succeed on a retry of the same backend
/// (after recovery actions such as re-embedding); permanent ones move
/// straight to the next fallback rung.
bool transient_failure(FailureKind kind) noexcept;
/// The FailureKind an injected fault surfaces as.
FailureKind failure_from_fault(FaultKind fault) noexcept;

}  // namespace nck
