// A Plan is the expensive output of Backend::prepare() — everything a
// backend computes before it touches (modeled) hardware: the compiled
// QUBO, presolve artifacts, a minor embedding, a transpiled circuit.
// Plans are immutable once built, shared by pointer, and content-addressed
// by the Fingerprint of their inputs, so repeat solves of the same program
// (parameter scans, fallback re-runs, batch duplicates) skip straight to
// execute().
#pragma once

#include <cstddef>
#include <memory>

namespace nck::backend {

class Plan {
 public:
  virtual ~Plan() = default;

  /// Approximate heap footprint, charged against the cache's byte budget.
  virtual std::size_t bytes() const noexcept = 0;
};

using PlanPtr = std::shared_ptr<const Plan>;

}  // namespace nck::backend
