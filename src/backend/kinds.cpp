#include "backend/kinds.hpp"

namespace nck {

const char* backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kClassical: return "classical";
    case BackendKind::kAnnealer: return "annealer";
    case BackendKind::kCircuit: return "circuit";
  }
  return "?";
}

const char* failure_kind_name(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kNone: return "none";
    case FailureKind::kBadOptions: return "bad-options";
    case FailureKind::kAnalysisRejected: return "analysis-rejected";
    case FailureKind::kInfeasible: return "infeasible";
    case FailureKind::kNoEmbedding: return "no-embedding";
    case FailureKind::kDeviceTooSmall: return "device-too-small";
    case FailureKind::kNoSamples: return "no-samples";
    case FailureKind::kJobRejected: return "job-rejected";
    case FailureKind::kQueueTimeout: return "queue-timeout";
    case FailureKind::kDeadQubits: return "dead-qubits";
    case FailureKind::kExecutionError: return "execution-error";
    case FailureKind::kRetriesExhausted: return "retries-exhausted";
    case FailureKind::kDeadlineExhausted: return "deadline-exhausted";
  }
  return "?";
}

const char* failure_kind_description(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kNone: return "the solve ran";
    case FailureKind::kBadOptions: return "backend options are invalid";
    case FailureKind::kAnalysisRejected:
      return "static analysis rejected the program";
    case FailureKind::kInfeasible:
      return "program is infeasible (hard constraints conflict)";
    case FailureKind::kNoEmbedding:
      return "no minor embedding found on the device";
    case FailureKind::kDeviceTooSmall:
      return "problem does not fit the device";
    case FailureKind::kNoSamples: return "backend returned no samples";
    case FailureKind::kJobRejected:
      return "job submission rejected by the scheduler";
    case FailureKind::kQueueTimeout: return "job timed out in the queue";
    case FailureKind::kDeadQubits:
      return "embedded qubits died mid-session";
    case FailureKind::kExecutionError:
      return "transient circuit-execution error";
    case FailureKind::kRetriesExhausted:
      return "retry budget exhausted without a successful attempt";
    case FailureKind::kDeadlineExhausted:
      return "session deadline exhausted";
  }
  return "?";
}

bool transient_failure(FailureKind kind) noexcept {
  switch (kind) {
    case FailureKind::kJobRejected:
    case FailureKind::kQueueTimeout:
    case FailureKind::kDeadQubits:
    case FailureKind::kExecutionError:
      return true;
    default:
      return false;
  }
}

FailureKind failure_from_fault(FaultKind fault) noexcept {
  switch (fault) {
    case FaultKind::kJobRejection: return FailureKind::kJobRejected;
    case FaultKind::kQueueTimeout: return FailureKind::kQueueTimeout;
    case FaultKind::kDeadQubits: return FailureKind::kDeadQubits;
    case FaultKind::kExecutionError: return FailureKind::kExecutionError;
    // Drift degrades samples but never aborts an attempt by itself.
    case FaultKind::kCalibrationDrift: return FailureKind::kNone;
  }
  return FailureKind::kNone;
}

}  // namespace nck
