// Content fingerprints for the plan cache (DESIGN.md §3d). A Fingerprint
// is a 128-bit FNV-1a-style accumulator fed with the canonicalized inputs
// of a backend's prepare() stage: the program structure, the hardware
// topology, and every prepare-relevant option. Two fingerprints collide
// only if both 64-bit lanes collide, which the cache treats as never.
//
// Canonicalization rules: variable *names* are erased (a renamed but
// otherwise identical program hashes the same), but variable *ids* are
// kept — cached plans store artifacts indexed by id, so only programs
// whose constraint structure matches id-for-id may share a plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nck {

class Env;
class Graph;
struct Device;

namespace backend {

class Fingerprint {
 public:
  void mix_bytes(const void* data, std::size_t n) noexcept;
  void mix(std::uint64_t v) noexcept;
  void mix(std::int64_t v) noexcept { mix(static_cast<std::uint64_t>(v)); }
  void mix(std::uint32_t v) noexcept { mix(static_cast<std::uint64_t>(v)); }
  void mix(int v) noexcept { mix(static_cast<std::uint64_t>(v)); }
  void mix(bool v) noexcept { mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  /// Hashes the bit pattern; NaNs are normalized so any NaN hashes alike.
  void mix(double v) noexcept;
  void mix(const std::string& s) noexcept;

  std::uint64_t lo() const noexcept { return lo_; }
  std::uint64_t hi() const noexcept { return hi_; }

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) noexcept {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) noexcept {
    return !(a == b);
  }

  struct Hasher {
    std::size_t operator()(const Fingerprint& f) const noexcept {
      return static_cast<std::size_t>(f.lo_ ^ (f.hi_ * 0x9E3779B97F4A7C15ull));
    }
  };

 private:
  // FNV-1a offset bases for the two lanes; the second lane starts from a
  // different basis so the lanes decorrelate after the first byte.
  std::uint64_t lo_ = 0xCBF29CE484222325ull;
  std::uint64_t hi_ = 0x84222325CBF29CE4ull;
};

/// Canonical program structure: variable count plus every constraint's
/// (hardness, canonical collection, selection set), mixed as a sorted
/// multiset of per-constraint digests so constraint *order* is erased —
/// permuted-but-identical programs share PlanCache entries. Names are
/// ignored.
void mix_env(Fingerprint& fp, const Env& env);

/// Edge list of a graph (vertex count + sorted adjacency).
void mix_graph(Fingerprint& fp, const Graph& graph);

/// Topology of a device: its graph plus the operable-qubit mask, so a
/// single dead qubit changes the fingerprint (and forces a re-prepare).
void mix_device(Fingerprint& fp, const Device& device);

/// Bit vector, packed: the decomposer's incumbent assignments and clamped
/// boundaries. Two sub-plans share a fingerprint exactly when their clamped
/// boundary values (and hence their clamped sub-programs) agree, which is
/// what makes re-visiting an unchanged neighborhood a pure cache hit.
void mix_assignment(Fingerprint& fp, const std::vector<bool>& bits);

}  // namespace backend
}  // namespace nck
