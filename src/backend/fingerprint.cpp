#include "backend/fingerprint.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "anneal/topology.hpp"
#include "core/env.hpp"
#include "graph/graph.hpp"

namespace nck::backend {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
}

void Fingerprint::mix_bytes(const void* data, std::size_t n) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    lo_ = (lo_ ^ bytes[i]) * kFnvPrime;
    hi_ = (hi_ ^ bytes[i]) * kFnvPrime;
    // Cross-feed the lanes so they stay decorrelated even on inputs that
    // differ only in late bytes.
    hi_ += lo_ >> 32;
  }
}

void Fingerprint::mix(std::uint64_t v) noexcept {
  unsigned char bytes[8];
  std::memcpy(bytes, &v, sizeof(v));
  mix_bytes(bytes, sizeof(bytes));
}

void Fingerprint::mix(double v) noexcept {
  if (std::isnan(v)) v = std::numeric_limits<double>::quiet_NaN();
  if (v == 0.0) v = 0.0;  // merge -0.0 with +0.0
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  mix(bits);
}

void Fingerprint::mix(const std::string& s) noexcept {
  mix(static_cast<std::uint64_t>(s.size()));
  mix_bytes(s.data(), s.size());
}

void mix_env(Fingerprint& fp, const Env& env) {
  fp.mix(std::string("env"));
  fp.mix(env.num_vars());
  fp.mix(env.num_constraints());
  // Hash each constraint into its own fingerprint and mix the digests in
  // sorted order: a program is a conjunction plus a soft-count objective,
  // both order-independent, so permuted-but-identical programs must key the
  // same PlanCache entry. Sorting a digest multiset (not a set) keeps
  // repeated soft constraints — which double their weight — distinct.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> digests;
  digests.reserve(env.num_constraints());
  for (const Constraint& c : env.constraints()) {
    Fingerprint cf;
    cf.mix(c.soft());
    // distinct_vars() is the constraint's canonical variable order, so two
    // constraints built from permuted-but-equal collections hash alike.
    const auto& vars = c.distinct_vars();
    cf.mix(vars.size());
    for (VarId v : vars) cf.mix(static_cast<std::uint64_t>(v));
    cf.mix(c.cardinality());
    const ConstraintPattern pattern = c.pattern();
    cf.mix(pattern.key());
    digests.emplace_back(cf.lo(), cf.hi());
  }
  std::sort(digests.begin(), digests.end());
  for (const auto& [lo, hi] : digests) {
    fp.mix(lo);
    fp.mix(hi);
  }
}

void mix_graph(Fingerprint& fp, const Graph& graph) {
  fp.mix(std::string("graph"));
  fp.mix(graph.num_vertices());
  fp.mix(graph.num_edges());
  for (const auto& [u, v] : graph.edges()) {
    fp.mix(static_cast<std::uint64_t>(u));
    fp.mix(static_cast<std::uint64_t>(v));
  }
}

void mix_device(Fingerprint& fp, const Device& device) {
  fp.mix(std::string("device"));
  mix_graph(fp, device.graph);
  // Pack the operable mask: one dead qubit must change the key.
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (std::size_t q = 0; q < device.operable.size(); ++q) {
    word = (word << 1) | (device.operable[q] ? 1u : 0u);
    if (++filled == 64) {
      fp.mix(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) fp.mix(word);
  fp.mix(device.operable.size());
}

void mix_assignment(Fingerprint& fp, const std::vector<bool>& bits) {
  fp.mix(std::string("assignment"));
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    word = (word << 1) | (bits[i] ? 1u : 0u);
    if (++filled == 64) {
      fp.mix(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) fp.mix(word);
  fp.mix(bits.size());
}

}  // namespace nck::backend
