#include "backend/plan_cache.hpp"

#include <limits>
#include <mutex>

namespace nck::backend {

PlanCache::PlanCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

PlanPtr PlanCache::find(const Fingerprint& key) {
  std::shared_lock lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  it->second->stamp.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                          std::memory_order_relaxed);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->plan;
}

void PlanCache::insert(const Fingerprint& key, PlanPtr plan) {
  if (!plan) return;
  std::unique_lock lock(mutex_);
  auto entry = std::make_unique<Entry>();
  entry->bytes = plan->bytes();
  entry->plan = std::move(plan);
  entry->stamp.store(clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
  const auto [it, fresh] = entries_.try_emplace(key);
  if (!fresh) bytes_ -= it->second->bytes;
  bytes_ += entry->bytes;
  it->second = std::move(entry);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  evict_locked();
}

void PlanCache::evict_locked() {
  if (max_bytes_ == 0) return;
  while (bytes_ > max_bytes_ && entries_.size() > 1) {
    auto victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const std::uint64_t stamp =
          it->second->stamp.load(std::memory_order_relaxed);
      if (stamp < oldest) {
        oldest = stamp;
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    bytes_ -= victim->second->bytes;
    entries_.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::clear() {
  std::unique_lock lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

PlanCacheStats PlanCache::stats() const {
  std::shared_lock lock(mutex_);
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.entries = entries_.size();
  s.bytes = bytes_;
  const SharedSynthCache::Stats synth = synth_cache_.stats();
  s.synth_hits = synth.hits;
  s.synth_misses = synth.misses;
  return s;
}

}  // namespace nck::backend
