#include "backend/registry.hpp"

namespace nck::backend {

void Registry::add(std::unique_ptr<Backend> backend) {
  if (!backend) return;
  for (auto& existing : backends_) {
    if (existing->kind() == backend->kind()) {
      existing = std::move(backend);
      return;
    }
  }
  backends_.push_back(std::move(backend));
}

const Backend* Registry::find(BackendKind kind) const noexcept {
  for (const auto& backend : backends_) {
    if (backend->kind() == kind) return backend.get();
  }
  return nullptr;
}

}  // namespace nck::backend
