// Content-addressed plan cache (DESIGN.md §3d): Fingerprint -> PlanPtr
// with an LRU byte budget. One cache may be shared by many solvers across
// many threads (lookups take a shared lock and refresh recency with an
// atomic stamp; inserts and evictions take the exclusive lock), so a
// batch of related solves pays each prepare cost once. The cache also
// owns the cross-engine synthesis cache: per-pattern QUBO syntheses keyed
// by canonical pattern, shared by every SynthEngine wired to it.
//
// Hit/miss/eviction counters are kept globally (stats(), for pool
// reports) and recorded per solve into the obs trace by the callers, so
// `--trace` shows whether a solve prepared from scratch or reused a plan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <unordered_map>

#include "backend/fingerprint.hpp"
#include "backend/plan.hpp"
#include "synth/shared_cache.hpp"

namespace nck::backend {

struct PlanCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
  std::size_t evictions = 0;
  std::size_t entries = 0;      // current
  std::size_t bytes = 0;        // current
  std::size_t synth_hits = 0;   // shared synthesis cache
  std::size_t synth_misses = 0;
};

class PlanCache {
 public:
  /// `max_bytes` bounds the summed Plan::bytes() of resident plans; 0
  /// means unbounded. The shared synthesis cache is exempt from the LRU
  /// budget (pattern QUBOs are tiny and globally reusable).
  explicit PlanCache(std::size_t max_bytes = kDefaultMaxBytes);

  /// Plan for `key`, or nullptr on a miss. A hit refreshes LRU recency.
  PlanPtr find(const Fingerprint& key);

  /// Inserts (or replaces) the plan for `key`, then evicts least-recently
  /// used entries until the byte budget holds. A null plan is ignored.
  /// A plan larger than the whole budget is inserted and evicted on the
  /// next insert — the current solve still gets to use it.
  void insert(const Fingerprint& key, PlanPtr plan);

  void clear();

  PlanCacheStats stats() const;
  std::size_t max_bytes() const noexcept { return max_bytes_; }

  /// Cross-engine synthesis memo; wire into engines via
  /// SynthEngine::set_shared_cache().
  SharedSynthCache& synth_cache() noexcept { return synth_cache_; }

  static constexpr std::size_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

 private:
  struct Entry {
    PlanPtr plan;
    std::size_t bytes = 0;
    /// Logical access time; eviction removes the smallest. Atomic so a
    /// shared-lock hit can refresh recency without the exclusive lock.
    std::atomic<std::uint64_t> stamp{0};
  };

  void evict_locked();

  const std::size_t max_bytes_;
  mutable std::shared_mutex mutex_;
  std::unordered_map<Fingerprint, std::unique_ptr<Entry>, Fingerprint::Hasher>
      entries_;
  std::size_t bytes_ = 0;       // guarded by exclusive mutex_
  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> misses_{0};
  std::atomic<std::size_t> inserts_{0};
  std::atomic<std::size_t> evictions_{0};
  SharedSynthCache synth_cache_;
};

}  // namespace nck::backend
