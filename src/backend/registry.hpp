// Registry of execution backends, keyed by BackendKind. The runtime
// solver iterates this instead of switching on kinds; tests register
// custom backends to exercise the solve loop with synthetic targets.
#pragma once

#include <memory>
#include <vector>

#include "backend/backend.hpp"

namespace nck::backend {

class Registry {
 public:
  /// Registers `backend`, replacing any existing backend of the same
  /// kind (latest registration wins). Null pointers are ignored.
  void add(std::unique_ptr<Backend> backend);

  /// The backend registered for `kind`, or null.
  const Backend* find(BackendKind kind) const noexcept;

  /// All registered backends, in registration order.
  const std::vector<std::unique_ptr<Backend>>& backends() const noexcept {
    return backends_;
  }

 private:
  std::vector<std::unique_ptr<Backend>> backends_;
};

}  // namespace nck::backend
