#include "core/compile.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "qubo/brute_force.hpp"

namespace nck {

double max_min_penalty(const SynthesizedQubo& synth) {
  if (synth.num_vars + synth.num_ancillas > 24) {
    throw std::invalid_argument("max_min_penalty: constraint too large");
  }
  double worst = 0.0;
  for (double m : ancilla_projected_minima(synth.qubo, synth.num_vars,
                                           synth.num_ancillas)) {
    worst = std::max(worst, m);
  }
  return worst;
}

CompiledQubo compile(const Env& env, SynthEngine& engine,
                     const CompileOptions& options, obs::Trace* trace) {
  obs::Span compile_span(trace, "compile");
  const SynthEngineStats stats_before = engine.stats();
  CompiledQubo out;
  out.num_problem_vars = env.num_vars();

  // Pass 1: synthesize every constraint, instantiate soft ones at weight
  // 1/gap (cheapest violation costs exactly 1), and collect hard ones with
  // their gaps so they can be scaled afterwards.
  struct PendingHard {
    Qubo qubo;   // already remapped into program space
    double gap;  // minimum violation energy at weight 1
  };
  std::vector<PendingHard> hard;
  Qubo soft_sum(env.num_vars());
  double max_soft_energy = 0.0;
  std::size_t next_ancilla = env.num_vars();

  for (const auto& c : env.constraints()) {
    const SynthesizedQubo& synth = engine.synthesize(c.pattern());
    // Mapping: pattern variable i -> program variable; ancillas -> fresh ids.
    std::vector<Qubo::Var> mapping;
    mapping.reserve(synth.num_vars + synth.num_ancillas);
    for (VarId v : c.distinct_vars()) mapping.push_back(v);
    for (std::size_t k = 0; k < synth.num_ancillas; ++k) {
      mapping.push_back(static_cast<Qubo::Var>(next_ancilla++));
    }
    Qubo instantiated = synth.qubo.remapped(mapping);
    if (c.soft()) {
      if (synth.gap <= 0.0) {
        throw std::runtime_error("compile: non-positive gap for " +
                                 c.to_string(env.var_names()));
      }
      instantiated.scale(1.0 / synth.gap);
      soft_sum += instantiated;
      max_soft_energy += max_min_penalty(synth) / synth.gap;
    } else {
      hard.push_back({std::move(instantiated), synth.gap});
    }
  }

  // Pass 2: hard constraints must dominate all soft energy. Scaling each by
  // hard_scale / gap makes the cheapest hard violation cost
  // max_soft_energy + hard_margin.
  out.max_soft_energy = max_soft_energy;
  out.hard_scale = max_soft_energy + options.hard_margin;
  Qubo total(env.num_vars());
  for (auto& h : hard) {
    h.qubo.scale(out.hard_scale / h.gap);
    total += h.qubo;
  }
  total += soft_sum;
  total.resize(next_ancilla);  // declare trailing ancillas even if untouched
  out.qubo = std::move(total);
  out.num_ancillas = next_ancilla - env.num_vars();

  if (trace) {
    // Promote this run's SynthEngine::Stats deltas into the trace (the
    // engine is long-lived and its totals span solves).
    const SynthEngineStats& now = engine.stats();
    obs::Registry& reg = trace->registry();
    const auto delta = [](std::size_t after, std::size_t before) {
      return static_cast<double>(after - before);
    };
    reg.add("synth.requests", delta(now.requests, stats_before.requests));
    reg.add("synth.cache_hits", delta(now.cache_hits, stats_before.cache_hits));
    reg.add("synth.cache_misses",
            delta(now.requests, stats_before.requests) -
                delta(now.cache_hits, stats_before.cache_hits));
    reg.add("synth.builtin_hits",
            delta(now.builtin_hits, stats_before.builtin_hits));
    reg.add("synth.z3_calls", delta(now.z3_calls, stats_before.z3_calls));
    reg.add("synth.lp_calls", delta(now.lp_calls, stats_before.lp_calls));
    reg.set("compile.qubo_vars", static_cast<double>(out.num_qubo_vars()));
    reg.set("compile.ancillas", static_cast<double>(out.num_ancillas));
    reg.set("compile.hard_scale", out.hard_scale);
  }
  return out;
}

CompiledQubo compile(const Env& env, const CompileOptions& options) {
  SynthEngine engine;
  return compile(env, engine, options);
}

}  // namespace nck
