// Text format for NchooseK programs, matching Env::to_string():
//
//   # comments run to end of line
//   nck({a, b}, {0, 1})
//     /\ nck({b, c}, {1})
//     /\ nck({a}, {0}, soft)
//
// Variables are created on first mention (repetition inside a collection is
// allowed and meaningful, per Definition 1). The "/\" conjunction separators
// and newlines between constraints are interchangeable.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/env.hpp"

namespace nck {

/// Thrown on malformed program text; message carries line/column context.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& message)
      : std::runtime_error(message) {}
};

/// Parses a full program. Throws ParseError on syntax errors and
/// std::invalid_argument on semantic ones (e.g. selection > cardinality).
Env parse_program(const std::string& text);

/// Reads the whole stream and parses it.
Env parse_program(std::istream& in);

}  // namespace nck
