// Text format for NchooseK programs, matching Env::to_string():
//
//   # comments run to end of line
//   nck({a, b}, {0, 1})
//     /\ nck({b, c}, {1})
//     /\ nck({a}, {0}, soft)
//
// Variables are created on first mention (repetition inside a collection is
// allowed and meaningful, per Definition 1). The "/\" conjunction separators
// and newlines between constraints are interchangeable.
//
// The parser is hardened against adversarial input (it sits behind the
// nck_serve wire and the fuzz harnesses): ParseLimits bounds the input
// size, token lengths, bracket nesting, numeric literal range, and program
// shape, and every violation is a *typed* ParseLimitError naming the limit
// that tripped. The numeric-literal bound also closes two real bugs found
// by fuzzing: selection literals past ULONG_MAX used to escape as
// std::out_of_range (violating the documented ParseError contract), and
// literals past UINT_MAX were silently truncated modulo 2^32 (so
// nck({a},{4294967296}) parsed as nck({a},{0})).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/env.hpp"

namespace nck {

/// Thrown on malformed program text; message carries line/column context.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& message)
      : std::runtime_error(message) {}
};

/// The resource limit a ParseLimitError reports.
enum class ParseLimit {
  kInputBytes,      // whole-program byte cap
  kTokenLength,     // one identifier / number literal
  kNestingDepth,    // open '(' / '{' brackets
  kNumberValue,     // selection literal magnitude
  kCollectionSize,  // variables in one collection
  kSelectionSize,   // values in one selection set
  kConstraints,     // constraints in the program
  kVariables,       // distinct variables in the program
};

/// "input-bytes", "token-length", ... — stable diagnostic identifier.
const char* parse_limit_name(ParseLimit limit) noexcept;

/// Typed rejection of pathological-but-syntactic input: the program text
/// exceeded a ParseLimits bound. Subclasses ParseError so existing callers
/// that catch ParseError keep working; hardened callers (the serve layer,
/// the fuzz harnesses) can branch on limit().
class ParseLimitError : public ParseError {
 public:
  ParseLimitError(ParseLimit limit, const std::string& message)
      : ParseError(message), limit_(limit) {}
  ParseLimit limit() const noexcept { return limit_; }

 private:
  ParseLimit limit_;
};

/// Bounds on adversarial program text. The defaults mirror the serve
/// layer's 1 MiB pre-parse request cap and comfortably admit every
/// program under examples/ while keeping the lexer's worst case linear
/// and small.
struct ParseLimits {
  /// Whole-input byte cap (mirrors serve::kMaxRequestBytes).
  std::size_t max_input_bytes = 1u << 20;
  /// Longest identifier or number literal, in characters.
  std::size_t max_token_length = 256;
  /// Deepest simultaneously-open '(' / '{' bracket nesting. The grammar
  /// today nests at most 2 deep; the explicit bound keeps that an
  /// invariant (and a typed error) rather than an accident.
  std::size_t max_nesting_depth = 16;
  /// Largest admissible selection literal. Selection values beyond the
  /// collection cardinality are semantically invalid anyway; this bound
  /// rejects them before any unsigned conversion can truncate.
  unsigned long max_number_value = 1u << 20;
  /// Variables in one collection / values in one selection set.
  std::size_t max_collection_size = 1u << 16;
  std::size_t max_selection_size = 1u << 16;
  /// Constraints and distinct variables in the whole program.
  std::size_t max_constraints = 1u << 16;
  std::size_t max_variables = 1u << 16;
};

/// Parses a full program. Throws ParseError on syntax errors,
/// ParseLimitError (a ParseError) on limit violations, and
/// std::invalid_argument on semantic ones (e.g. selection > cardinality).
Env parse_program(const std::string& text, const ParseLimits& limits = {});

/// Reads the whole stream and parses it.
Env parse_program(std::istream& in, const ParseLimits& limits = {});

}  // namespace nck
