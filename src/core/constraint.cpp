#include "core/constraint.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace nck {

Constraint::Constraint(std::vector<VarId> collection,
                       std::set<unsigned> selection, ConstraintKind kind)
    : collection_(std::move(collection)),
      selection_(std::move(selection)),
      kind_(kind) {
  if (collection_.empty()) {
    throw std::invalid_argument("Constraint: empty variable collection");
  }
  if (selection_.empty()) {
    throw std::invalid_argument("Constraint: empty selection set");
  }
  for (unsigned k : selection_) {
    if (k > collection_.size()) {
      throw std::invalid_argument(
          "Constraint: selection value exceeds collection cardinality");
    }
  }
  std::map<VarId, unsigned> mults;
  for (VarId v : collection_) ++mults[v];
  std::vector<std::pair<unsigned, VarId>> order;
  order.reserve(mults.size());
  for (const auto& [v, m] : mults) order.emplace_back(m, v);
  std::sort(order.begin(), order.end());
  for (const auto& [m, v] : order) {
    distinct_.push_back(v);
    multiplicity_.push_back(m);
  }
}

ConstraintPattern Constraint::pattern() const {
  return ConstraintPattern(multiplicity_, selection_);
}

std::string Constraint::symmetry_key() const {
  std::ostringstream os;
  os << (soft() ? "s" : "h") << "|n:" << cardinality() << "|k:";
  bool first = true;
  for (unsigned k : selection_) {
    if (!first) os << ',';
    os << k;
    first = false;
  }
  return os.str();
}

bool Constraint::satisfied(const std::vector<bool>& assignment) const {
  unsigned count = 0;
  for (VarId v : collection_) {
    if (v >= assignment.size()) {
      throw std::out_of_range("Constraint::satisfied: assignment too short");
    }
    if (assignment[v]) ++count;
  }
  return selection_.count(count) > 0;
}

std::string Constraint::to_string(
    const std::vector<std::string>& var_names) const {
  auto name = [&](VarId v) {
    if (v < var_names.size() && !var_names[v].empty()) return var_names[v];
    return "v" + std::to_string(v);
  };
  std::ostringstream os;
  os << "nck({";
  for (std::size_t i = 0; i < collection_.size(); ++i) {
    if (i) os << ", ";
    os << name(collection_[i]);
  }
  os << "}, {";
  bool first = true;
  for (unsigned k : selection_) {
    if (!first) os << ", ";
    os << k;
    first = false;
  }
  os << "}";
  if (soft()) os << ", soft";
  os << ")";
  return os.str();
}

}  // namespace nck
