#include "core/env.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace nck {

VarId Env::new_var(std::string name) {
  const VarId id = static_cast<VarId>(names_.size());
  if (name.empty()) name = "_v" + std::to_string(id);
  if (by_name_.count(name)) {
    throw std::invalid_argument("Env::new_var: duplicate name '" + name + "'");
  }
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

std::vector<VarId> Env::new_vars(std::size_t count, const std::string& prefix) {
  std::vector<VarId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ids.push_back(new_var(prefix.empty() ? "" : prefix + std::to_string(i)));
  }
  return ids;
}

VarId Env::var(const std::string& name) {
  if (auto it = by_name_.find(name); it != by_name_.end()) return it->second;
  return new_var(name);
}

void Env::nck(std::vector<VarId> collection, std::set<unsigned> selection,
              ConstraintKind kind) {
  for (VarId v : collection) {
    if (v >= names_.size()) {
      throw std::invalid_argument("Env::nck: unknown variable id " +
                                  std::to_string(v));
    }
  }
  constraints_.emplace_back(std::move(collection), std::move(selection), kind);
  if (kind == ConstraintKind::kHard) ++num_hard_;
}

void Env::exactly(std::vector<VarId> collection, unsigned k,
                  ConstraintKind kind) {
  nck(std::move(collection), {k}, kind);
}

void Env::at_least(std::vector<VarId> collection, unsigned k,
                   ConstraintKind kind) {
  std::set<unsigned> sel;
  for (unsigned i = k; i <= collection.size(); ++i) sel.insert(i);
  nck(std::move(collection), std::move(sel), kind);
}

void Env::at_most(std::vector<VarId> collection, unsigned k,
                  ConstraintKind kind) {
  std::set<unsigned> sel;
  for (unsigned i = 0; i <= k && i <= collection.size(); ++i) sel.insert(i);
  nck(std::move(collection), std::move(sel), kind);
}

void Env::all_true(std::vector<VarId> collection, ConstraintKind kind) {
  const unsigned n = static_cast<unsigned>(collection.size());
  nck(std::move(collection), {n}, kind);
}

void Env::all_false(std::vector<VarId> collection, ConstraintKind kind) {
  nck(std::move(collection), {0u}, kind);
}

void Env::different(VarId a, VarId b, ConstraintKind kind) {
  nck({a, b}, {1u}, kind);
}

void Env::same(VarId a, VarId b, ConstraintKind kind) {
  nck({a, b}, {0u, 2u}, kind);
}

void Env::prefer_false(VarId v) { nck({v}, {0u}, ConstraintKind::kSoft); }

void Env::prefer_true(VarId v) { nck({v}, {1u}, ConstraintKind::kSoft); }

std::size_t Env::num_nonsymmetric() const {
  std::set<std::string> classes;
  for (const auto& c : constraints_) classes.insert(c.symmetry_key());
  return classes.size();
}

Evaluation Env::evaluate(const std::vector<bool>& assignment) const {
  Evaluation eval;
  eval.soft_total = num_soft();
  for (const auto& c : constraints_) {
    const bool ok = c.satisfied(assignment);
    if (c.soft()) {
      if (ok) ++eval.soft_satisfied;
    } else if (!ok) {
      ++eval.hard_violated;
    }
  }
  return eval;
}

std::string Env::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < constraints_.size(); ++i) {
    if (i) os << " /\\\n";
    os << constraints_[i].to_string(names_);
  }
  return os.str();
}

}  // namespace nck
