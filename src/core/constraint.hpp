// NchooseK constraints (Definitions 1-6 of the paper).
//
// A constraint nck(N, K) over a variable collection N (repetition allowed,
// order irrelevant) and selection set K is satisfied when the number of
// TRUE variables in N, counted with multiplicity, is a member of K.
// A constraint may be *hard* (must hold) or *soft* (desired; executions
// maximize the number of satisfied soft constraints).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "synth/pattern.hpp"

namespace nck {

using VarId = std::uint32_t;

enum class ConstraintKind { kHard, kSoft };

class Constraint {
 public:
  /// `collection` may contain repeated variable ids; `selection` values must
  /// not exceed the collection's cardinality (checked here).
  Constraint(std::vector<VarId> collection, std::set<unsigned> selection,
             ConstraintKind kind);

  const std::vector<VarId>& collection() const noexcept { return collection_; }
  const std::set<unsigned>& selection() const noexcept { return selection_; }
  ConstraintKind kind() const noexcept { return kind_; }
  bool soft() const noexcept { return kind_ == ConstraintKind::kSoft; }

  /// Cardinality of the collection (with repetitions).
  std::size_t cardinality() const noexcept { return collection_.size(); }

  /// Distinct variables in canonical (pattern) order: sorted by ascending
  /// multiplicity, ties broken by variable id. Index i here corresponds to
  /// QUBO variable i of the synthesized pattern QUBO.
  const std::vector<VarId>& distinct_vars() const noexcept { return distinct_; }

  /// Canonical synthesis pattern (multiplicities sorted ascending, matching
  /// distinct_vars order).
  ConstraintPattern pattern() const;

  /// Symmetry class per Definition 7: two constraints are symmetric iff they
  /// share the selection set and collection cardinality (and, in this
  /// implementation, hardness). The key is stable across runs.
  std::string symmetry_key() const;

  /// Does the assignment satisfy the constraint? `assignment[v]` must be
  /// valid for every v in the collection.
  bool satisfied(const std::vector<bool>& assignment) const;

  /// Renders as e.g. "nck({x1, x2, x2}, {0, 2}, soft)" using the given
  /// name lookup.
  std::string to_string(
      const std::vector<std::string>& var_names = {}) const;

 private:
  std::vector<VarId> collection_;
  std::set<unsigned> selection_;
  ConstraintKind kind_;
  std::vector<VarId> distinct_;        // canonical order (see distinct_vars)
  std::vector<unsigned> multiplicity_;  // parallel to distinct_
};

}  // namespace nck
