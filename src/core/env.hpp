// The NchooseK environment: variables plus a conjunction of hard and soft
// constraints (a "generalized NchooseK program", Definition 6). This is the
// primary user-facing type of the library; problem encoders in
// src/problems build Envs, and backends in src/runtime execute them.
#pragma once

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/constraint.hpp"

namespace nck {

/// Per-assignment evaluation of a program (used for Definition 8
/// classification and by the classical solvers).
struct Evaluation {
  std::size_t hard_violated = 0;
  std::size_t soft_satisfied = 0;
  std::size_t soft_total = 0;

  bool feasible() const noexcept { return hard_violated == 0; }
};

class Env {
 public:
  Env() = default;

  /// Creates a fresh variable. Anonymous variables get a generated name.
  VarId new_var(std::string name = "");

  /// Creates `count` fresh variables named `<prefix>0 .. <prefix>{count-1}`
  /// (or anonymous when prefix is empty).
  std::vector<VarId> new_vars(std::size_t count, const std::string& prefix = "");

  /// Returns the variable with the given name, creating it on first use.
  VarId var(const std::string& name);

  std::size_t num_vars() const noexcept { return names_.size(); }
  const std::string& var_name(VarId v) const { return names_.at(v); }
  const std::vector<std::string>& var_names() const noexcept { return names_; }

  /// Adds nck(collection, selection) — hard by default, soft on request.
  /// Validates ids and the selection set eagerly.
  void nck(std::vector<VarId> collection, std::set<unsigned> selection,
           ConstraintKind kind = ConstraintKind::kHard);

  // Convenience constraint builders --------------------------------------

  /// Exactly k of the collection must be TRUE.
  void exactly(std::vector<VarId> collection, unsigned k,
               ConstraintKind kind = ConstraintKind::kHard);
  /// At least k must be TRUE.
  void at_least(std::vector<VarId> collection, unsigned k,
                ConstraintKind kind = ConstraintKind::kHard);
  /// At most k must be TRUE.
  void at_most(std::vector<VarId> collection, unsigned k,
               ConstraintKind kind = ConstraintKind::kHard);
  /// All of the collection must be TRUE.
  void all_true(std::vector<VarId> collection,
                ConstraintKind kind = ConstraintKind::kHard);
  /// All of the collection must be FALSE.
  void all_false(std::vector<VarId> collection,
                 ConstraintKind kind = ConstraintKind::kHard);
  /// a and b must differ.
  void different(VarId a, VarId b, ConstraintKind kind = ConstraintKind::kHard);
  /// a and b must be equal.
  void same(VarId a, VarId b, ConstraintKind kind = ConstraintKind::kHard);
  /// Soft preference that v be FALSE (the minimization idiom of Section IV-C).
  void prefer_false(VarId v);
  /// Soft preference that v be TRUE (the maximization idiom).
  void prefer_true(VarId v);

  // Introspection ---------------------------------------------------------

  const std::vector<Constraint>& constraints() const noexcept {
    return constraints_;
  }
  std::size_t num_constraints() const noexcept { return constraints_.size(); }
  std::size_t num_hard() const noexcept { return num_hard_; }
  std::size_t num_soft() const noexcept {
    return constraints_.size() - num_hard_;
  }

  /// Number of mutually non-symmetric constraint classes (Definition 7):
  /// constraints grouped by (hardness, cardinality, selection set).
  std::size_t num_nonsymmetric() const;

  /// Evaluates an assignment over all constraints.
  Evaluation evaluate(const std::vector<bool>& assignment) const;

  /// Multi-line rendering of the whole program.
  std::string to_string() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, VarId> by_name_;
  std::vector<Constraint> constraints_;
  std::size_t num_hard_ = 0;
};

}  // namespace nck
