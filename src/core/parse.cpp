#include "core/parse.hpp"

#include <cctype>
#include <istream>
#include <sstream>

namespace nck {
namespace {

class Lexer {
 public:
  Lexer(const std::string& text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  // Token kinds: punctuation chars '(' ')' '{' '}' ',', the "/\" separator
  // ('&'), identifiers ('i'), integers ('n'), end ('$').
  struct Token {
    char kind;
    std::string text;
    std::size_t line;
    std::size_t column;
  };

  Token next() {
    skip_space_and_comments();
    const std::size_t line = line_, column = column_;
    if (pos_ >= text_.size()) return {'$', "", line, column};
    const char c = text_[pos_];
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == ',') {
      advance();
      return {c, std::string(1, c), line, column};
    }
    if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\\') {
      advance();
      advance();
      return {'&', "/\\", line, column};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string number;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        number.push_back(text_[pos_]);
        if (number.size() > limits_.max_token_length) {
          fail_limit(ParseLimit::kTokenLength,
                     "number literal exceeds " +
                         std::to_string(limits_.max_token_length) +
                         " characters",
                     line, column);
        }
        advance();
      }
      return {'n', std::move(number), line, column};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ident.push_back(text_[pos_]);
        if (ident.size() > limits_.max_token_length) {
          fail_limit(ParseLimit::kTokenLength,
                     "identifier exceeds " +
                         std::to_string(limits_.max_token_length) +
                         " characters",
                     line, column);
        }
        advance();
      }
      return {'i', std::move(ident), line, column};
    }
    fail("unexpected character '" + std::string(1, c) + "'", line, column);
  }

  [[noreturn]] static void fail(const std::string& what, std::size_t line,
                                std::size_t column) {
    throw ParseError(where(what, line, column));
  }

  [[noreturn]] static void fail_limit(ParseLimit limit, const std::string& what,
                                      std::size_t line, std::size_t column) {
    throw ParseLimitError(
        limit, where(what + " [limit: " + parse_limit_name(limit) + "]", line,
                     column));
  }

 private:
  static std::string where(const std::string& what, std::size_t line,
                           std::size_t column) {
    std::ostringstream os;
    os << "parse error at line " << line << ", column " << column << ": "
       << what;
    return os.str();
  }

  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  const ParseLimits& limits_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

class Parser {
 public:
  Parser(const std::string& text, const ParseLimits& limits)
      : lexer_(text, limits), limits_(limits) {
    shift();
  }

  Env parse() {
    Env env;
    bool first = true;
    while (current_.kind != '$') {
      if (!first) {
        // Separators between constraints are optional; consume if present.
        if (current_.kind == '&') shift();
        if (current_.kind == '$') break;
      }
      parse_constraint(env);
      first = false;
    }
    return env;
  }

 private:
  void shift() { current_ = lexer_.next(); }

  void expect(char kind, const char* what) {
    if (current_.kind != kind) {
      Lexer::fail(std::string("expected ") + what + ", got '" + current_.text +
                      "'",
                  current_.line, current_.column);
    }
    if (kind == '(' || kind == '{') enter_nesting();
    if (kind == ')' || kind == '}') leave_nesting();
    shift();
  }

  void enter_nesting() {
    if (++nesting_depth_ > limits_.max_nesting_depth) {
      Lexer::fail_limit(ParseLimit::kNestingDepth,
                        "bracket nesting exceeds depth " +
                            std::to_string(limits_.max_nesting_depth),
                        current_.line, current_.column);
    }
  }

  void leave_nesting() {
    if (nesting_depth_ > 0) --nesting_depth_;
  }

  /// Converts a digit-string token to a selection value, rejecting
  /// anything past ParseLimits::max_number_value with a typed error
  /// *before* conversion so nothing can overflow or truncate (stoul used
  /// to throw std::out_of_range past ULONG_MAX and the unsigned cast
  /// silently wrapped literals past UINT_MAX).
  unsigned number_value(const Lexer::Token& token) const {
    unsigned long value = 0;
    for (const char c : token.text) {
      value = value * 10 + static_cast<unsigned long>(c - '0');
      if (value > limits_.max_number_value) {
        Lexer::fail_limit(ParseLimit::kNumberValue,
                          "selection value " + token.text + " exceeds " +
                              std::to_string(limits_.max_number_value),
                          token.line, token.column);
      }
    }
    return static_cast<unsigned>(value);
  }

  void parse_constraint(Env& env) {
    if (current_.kind != 'i' || current_.text != "nck") {
      Lexer::fail("expected 'nck', got '" + current_.text + "'",
                  current_.line, current_.column);
    }
    if (env.num_constraints() >= limits_.max_constraints) {
      Lexer::fail_limit(ParseLimit::kConstraints,
                        "program exceeds " +
                            std::to_string(limits_.max_constraints) +
                            " constraints",
                        current_.line, current_.column);
    }
    shift();
    expect('(', "'('");
    expect('{', "'{'");
    std::vector<VarId> collection;
    for (;;) {
      if (current_.kind != 'i') {
        Lexer::fail("expected variable name, got '" + current_.text + "'",
                    current_.line, current_.column);
      }
      if (collection.size() >= limits_.max_collection_size) {
        Lexer::fail_limit(ParseLimit::kCollectionSize,
                          "collection exceeds " +
                              std::to_string(limits_.max_collection_size) +
                              " variables",
                          current_.line, current_.column);
      }
      collection.push_back(env.var(current_.text));
      if (env.num_vars() > limits_.max_variables) {
        Lexer::fail_limit(ParseLimit::kVariables,
                          "program exceeds " +
                              std::to_string(limits_.max_variables) +
                              " distinct variables",
                          current_.line, current_.column);
      }
      shift();
      if (current_.kind == ',') {
        shift();
        continue;
      }
      break;
    }
    expect('}', "'}'");
    expect(',', "','");
    expect('{', "'{'");
    std::set<unsigned> selection;
    for (;;) {
      if (current_.kind != 'n') {
        Lexer::fail("expected selection number, got '" + current_.text + "'",
                    current_.line, current_.column);
      }
      if (selection.size() >= limits_.max_selection_size) {
        Lexer::fail_limit(ParseLimit::kSelectionSize,
                          "selection set exceeds " +
                              std::to_string(limits_.max_selection_size) +
                              " values",
                          current_.line, current_.column);
      }
      selection.insert(number_value(current_));
      shift();
      if (current_.kind == ',') {
        shift();
        continue;
      }
      break;
    }
    expect('}', "'}'");
    ConstraintKind kind = ConstraintKind::kHard;
    if (current_.kind == ',') {
      shift();
      if (current_.kind == 'i' && current_.text == "soft") {
        kind = ConstraintKind::kSoft;
        shift();
      } else if (current_.kind == 'i' && current_.text == "hard") {
        shift();
      } else {
        Lexer::fail("expected 'soft' or 'hard', got '" + current_.text + "'",
                    current_.line, current_.column);
      }
    }
    expect(')', "')'");
    env.nck(std::move(collection), std::move(selection), kind);
  }

  Lexer lexer_;
  const ParseLimits& limits_;
  std::size_t nesting_depth_ = 0;
  Lexer::Token current_{'$', "", 0, 0};
};

}  // namespace

const char* parse_limit_name(ParseLimit limit) noexcept {
  switch (limit) {
    case ParseLimit::kInputBytes: return "input-bytes";
    case ParseLimit::kTokenLength: return "token-length";
    case ParseLimit::kNestingDepth: return "nesting-depth";
    case ParseLimit::kNumberValue: return "number-value";
    case ParseLimit::kCollectionSize: return "collection-size";
    case ParseLimit::kSelectionSize: return "selection-size";
    case ParseLimit::kConstraints: return "constraints";
    case ParseLimit::kVariables: return "variables";
  }
  return "?";
}

Env parse_program(const std::string& text, const ParseLimits& limits) {
  if (text.size() > limits.max_input_bytes) {
    throw ParseLimitError(
        ParseLimit::kInputBytes,
        "parse error: program text exceeds the " +
            std::to_string(limits.max_input_bytes) + "-byte cap (" +
            std::to_string(text.size()) + " bytes) [limit: " +
            parse_limit_name(ParseLimit::kInputBytes) + "]");
  }
  return Parser(text, limits).parse();
}

Env parse_program(std::istream& in, const ParseLimits& limits) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_program(buffer.str(), limits);
}

}  // namespace nck
