#include "core/parse.hpp"

#include <cctype>
#include <istream>
#include <sstream>

namespace nck {
namespace {

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  // Token kinds: punctuation chars '(' ')' '{' '}' ',', the "/\" separator
  // ('&'), identifiers ('i'), integers ('n'), end ('$').
  struct Token {
    char kind;
    std::string text;
    std::size_t line;
    std::size_t column;
  };

  Token next() {
    skip_space_and_comments();
    const std::size_t line = line_, column = column_;
    if (pos_ >= text_.size()) return {'$', "", line, column};
    const char c = text_[pos_];
    if (c == '(' || c == ')' || c == '{' || c == '}' || c == ',') {
      advance();
      return {c, std::string(1, c), line, column};
    }
    if (c == '/' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '\\') {
      advance();
      advance();
      return {'&', "/\\", line, column};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string number;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        number.push_back(text_[pos_]);
        advance();
      }
      return {'n', std::move(number), line, column};
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ident.push_back(text_[pos_]);
        advance();
      }
      return {'i', std::move(ident), line, column};
    }
    fail("unexpected character '" + std::string(1, c) + "'", line, column);
  }

  [[noreturn]] static void fail(const std::string& what, std::size_t line,
                                std::size_t column) {
    std::ostringstream os;
    os << "parse error at line " << line << ", column " << column << ": "
       << what;
    throw ParseError(os.str());
  }

 private:
  void advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void skip_space_and_comments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') advance();
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t column_ = 1;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) { shift(); }

  Env parse() {
    Env env;
    bool first = true;
    while (current_.kind != '$') {
      if (!first) {
        // Separators between constraints are optional; consume if present.
        if (current_.kind == '&') shift();
        if (current_.kind == '$') break;
      }
      parse_constraint(env);
      first = false;
    }
    return env;
  }

 private:
  void shift() { current_ = lexer_.next(); }

  void expect(char kind, const char* what) {
    if (current_.kind != kind) {
      Lexer::fail(std::string("expected ") + what + ", got '" + current_.text +
                      "'",
                  current_.line, current_.column);
    }
    shift();
  }

  void parse_constraint(Env& env) {
    if (current_.kind != 'i' || current_.text != "nck") {
      Lexer::fail("expected 'nck', got '" + current_.text + "'",
                  current_.line, current_.column);
    }
    shift();
    expect('(', "'('");
    expect('{', "'{'");
    std::vector<VarId> collection;
    for (;;) {
      if (current_.kind != 'i') {
        Lexer::fail("expected variable name, got '" + current_.text + "'",
                    current_.line, current_.column);
      }
      collection.push_back(env.var(current_.text));
      shift();
      if (current_.kind == ',') {
        shift();
        continue;
      }
      break;
    }
    expect('}', "'}'");
    expect(',', "','");
    expect('{', "'{'");
    std::set<unsigned> selection;
    for (;;) {
      if (current_.kind != 'n') {
        Lexer::fail("expected selection number, got '" + current_.text + "'",
                    current_.line, current_.column);
      }
      selection.insert(static_cast<unsigned>(std::stoul(current_.text)));
      shift();
      if (current_.kind == ',') {
        shift();
        continue;
      }
      break;
    }
    expect('}', "'}'");
    ConstraintKind kind = ConstraintKind::kHard;
    if (current_.kind == ',') {
      shift();
      if (current_.kind == 'i' && current_.text == "soft") {
        kind = ConstraintKind::kSoft;
        shift();
      } else if (current_.kind == 'i' && current_.text == "hard") {
        shift();
      } else {
        Lexer::fail("expected 'soft' or 'hard', got '" + current_.text + "'",
                    current_.line, current_.column);
      }
    }
    expect(')', "')'");
    env.nck(std::move(collection), std::move(selection), kind);
  }

  Lexer lexer_;
  Lexer::Token current_{'$', "", 0, 0};
};

}  // namespace

Env parse_program(const std::string& text) { return Parser(text).parse(); }

Env parse_program(std::istream& in) {
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_program(buffer.str());
}

}  // namespace nck
