// Compilation of a generalized NchooseK program to a single QUBO
// (Section V). Every constraint is synthesized individually (via the
// SynthEngine and its pattern cache), remapped into program variable space
// with fresh ancilla indices, then summed — exploiting QUBO compositionality.
//
// Soft constraints are normalized so that the cheapest violation of each
// costs 1; hard constraints are scaled by a factor strictly larger than the
// total achievable soft penalty, so that any assignment violating a hard
// constraint has higher energy than every hard-feasible assignment.
#pragma once

#include "core/env.hpp"
#include "obs/obs.hpp"
#include "qubo/qubo.hpp"
#include "synth/engine.hpp"

namespace nck {

struct CompileOptions {
  /// Extra energy margin added on top of the soft-penalty bound when scaling
  /// hard constraints.
  double hard_margin = 1.0;
};

struct CompiledQubo {
  Qubo qubo;
  std::size_t num_problem_vars = 0;  // QUBO vars [0, n) are program variables
  std::size_t num_ancillas = 0;      // QUBO vars [n, n + a) are ancillas
  double hard_scale = 1.0;           // factor applied to hard constraints
  double max_soft_energy = 0.0;      // upper bound on total soft penalty

  std::size_t num_qubo_vars() const noexcept {
    return num_problem_vars + num_ancillas;
  }

  /// Projects a full QUBO assignment down to the program variables.
  std::vector<bool> project(const std::vector<bool>& full) const {
    return {full.begin(),
            full.begin() + static_cast<std::ptrdiff_t>(num_problem_vars)};
  }
};

/// Compiles `env` using (and warming) the given synthesis engine.
/// Throws std::runtime_error if any constraint cannot be synthesized.
/// When `trace` is non-null, records a "compile" span, this run's
/// synthesis-engine deltas (requests, cache hits/misses, builtin/Z3/LP
/// calls) as counters, and the QUBO shape as gauges.
CompiledQubo compile(const Env& env, SynthEngine& engine,
                     const CompileOptions& options = {},
                     obs::Trace* trace = nullptr);

/// Convenience overload with a default-configured engine.
CompiledQubo compile(const Env& env, const CompileOptions& options = {});

/// Maximum over x of (min over ancillas of f(x, z)) for a synthesized
/// constraint QUBO — the worst-case penalty the constraint can contribute.
/// Exposed for tests; requires num_vars + num_ancillas <= 24.
double max_min_penalty(const SynthesizedQubo& synth);

}  // namespace nck
