// Fixed-footprint latency histogram with approximate quantiles, for the
// daemon's p50/p99 gauges. The obs::HistogramData summary (count/sum/
// min/max) cannot answer quantile queries, and storing raw samples is
// unbounded over a daemon lifetime — so latencies land in geometric
// buckets (1 µs .. ~53 min at 1.25x growth) and quantiles are read as the
// upper bound of the bucket where the cumulative count crosses the rank.
// The relative error is bounded by the growth factor (≤ 25%), which is
// plenty for an SLO gauge; exact min/max/mean ride along.
//
// Thread-safe: one mutex, observe() is O(1), quantile() is O(buckets).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace nck::serve {

class LatencyHistogram {
 public:
  /// Feeds one latency observation, in milliseconds (values below the
  /// first bucket clamp into it; values past the last clamp into the
  /// last).
  void observe(double ms);

  /// Approximate q-quantile (q in [0, 1]) in milliseconds: the upper
  /// bound of the bucket containing the rank, clamped to the observed
  /// max. 0 when empty.
  double quantile(double q) const;

  std::size_t count() const;
  double mean() const;
  double max() const;

 private:
  static constexpr std::size_t kBuckets = 96;
  static constexpr double kFirstUpperMs = 1e-3;  // 1 µs
  static constexpr double kGrowth = 1.25;

  /// Bucket whose upper bound is the smallest >= ms.
  static std::size_t bucket_of(double ms) noexcept;
  /// Upper bound of bucket `b` in ms.
  static double upper_of(std::size_t b) noexcept;

  mutable std::mutex mutex_;
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace nck::serve
