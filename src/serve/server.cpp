#include "serve/server.hpp"

#include <chrono>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "anneal/topology.hpp"
#include "circuit/coupling.hpp"
#include "core/parse.hpp"
#include "obs/json.hpp"
#include "util/rng.hpp"

namespace nck::serve {
namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

std::string json_number(double v) {
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";  // not expected
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string assignment_json(const Env& env, const std::vector<bool>& bits) {
  std::string out = "{";
  for (std::size_t v = 0; v < bits.size() && v < env.num_vars(); ++v) {
    if (v) out += ",";
    out += "\"" + json_escape(env.var_name(static_cast<VarId>(v))) + "\":" +
           (bits[v] ? "true" : "false");
  }
  out += "}";
  return out;
}

}  // namespace

Server::Server(ServerOptions options, Sink sink)
    : options_(std::move(options)),
      sink_(std::move(sink)),
      cache_(std::make_shared<backend::PlanCache>(options_.cache_bytes)),
      lint_coupling_(brooklyn_coupling()) {
  if (options_.num_workers == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    options_.num_workers = hw ? hw : 1;
  }
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  // The same pseudo-device every `lint` request is checked against (the
  // nck_cli `--target=all` targets, with the CLI's fixed calibration seed).
  Rng device_rng(1234 ^ 0xD3071CEull);
  lint_device_ = advantage_4_1(device_rng);

  slots_.reserve(options_.num_workers);
  workers_.reserve(options_.num_workers);
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    slots_.push_back(std::make_unique<Slot>());
  }
  for (std::size_t w = 0; w < options_.num_workers; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
  if (std::isfinite(options_.stuck_after_ms)) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

Server::~Server() {
  std::vector<JobPtr> dropped;
  {
    std::lock_guard lock(queue_mutex_);
    draining_.store(true, std::memory_order_relaxed);
    dropped.assign(queue_.begin(), queue_.end());
    queue_.clear();
    stop_ = true;
  }
  for (const JobPtr& job : dropped) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    respond_once(job, error_response(job->id, op_name(job->req.op),
                                     WireError::kDraining,
                                     "daemon stopped before the request "
                                     "was started"));
  }
  work_cv_.notify_all();
  idle_cv_.notify_all();
  stop_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  if (watchdog_.joinable()) watchdog_.join();
}

Server::Submit Server::submit_line(const std::string& line) {
  Request req;
  std::string why;
  if (!parse_request(line, req, why)) {
    rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
    // Best-effort id echo: parse_request fills fields left-to-right, so an
    // id that appeared before the failure still correlates the rejection.
    emit(error_response(id_json(req), "invalid", WireError::kBadRequest, why));
    return Submit::kContinue;
  }

  if (req.op == Op::kStats) {
    // Answered inline, even while draining — the drain story depends on
    // being able to observe the daemon on its way out.
    emit(ok_response(id_json(req), "stats", ",\"stats\":" + stats_json()));
    return Submit::kContinue;
  }
  if (req.op == Op::kShutdown) {
    draining_.store(true, std::memory_order_relaxed);
    emit(ok_response(id_json(req), "shutdown", ",\"draining\":true"));
    return Submit::kShutdown;
  }

  if (draining_.load(std::memory_order_relaxed)) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    emit(error_response(id_json(req), op_name(req.op), WireError::kDraining,
                        "daemon is draining and no longer admits requests"));
    return Submit::kContinue;
  }

  auto job = std::make_shared<Job>();
  job->req = std::move(req);
  job->id = id_json(job->req);
  job->serial = serial_.fetch_add(1, std::memory_order_relaxed);
  job->enqueued = Clock::now();
  const double budget = std::isfinite(job->req.deadline_ms)
                            ? job->req.deadline_ms
                            : options_.default_deadline_ms;
  if (std::isfinite(budget)) {
    job->has_deadline = true;
    job->deadline_at =
        job->enqueued +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(std::max(budget, 0.0)));
  }

  {
    std::lock_guard lock(queue_mutex_);
    if (queue_.size() >= options_.queue_depth) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      emit(error_response(
          job->id, op_name(job->req.op), WireError::kOverloaded,
          "admission queue full (depth " +
              std::to_string(options_.queue_depth) + "); load shed"));
      return Submit::kContinue;
    }
    queue_.push_back(std::move(job));
    admitted_.fetch_add(1, std::memory_order_relaxed);
  }
  work_cv_.notify_one();
  return Submit::kContinue;
}

void Server::reject_oversized(std::size_t bytes) {
  rejected_bad_request_.fetch_add(1, std::memory_order_relaxed);
  emit(error_response("null", "invalid", WireError::kBadRequest,
                      "request line exceeds the " +
                          std::to_string(kMaxRequestBytes) + "-byte cap (" +
                          std::to_string(bytes) + " bytes discarded)"));
}

void Server::drain() {
  draining_.store(true, std::memory_order_relaxed);
  std::vector<JobPtr> dropped;
  {
    std::lock_guard lock(queue_mutex_);
    dropped.assign(queue_.begin(), queue_.end());
    queue_.clear();
  }
  for (const JobPtr& job : dropped) {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
    respond_once(job, error_response(job->id, op_name(job->req.op),
                                     WireError::kDraining,
                                     "daemon is draining; the request was "
                                     "queued but never started"));
  }
  std::unique_lock lock(queue_mutex_);
  idle_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void Server::worker_main(std::size_t slot_index) {
  Solver solver(options_.seed);
  solver.set_plan_cache(cache_);
  Analyzer analyzer;
  for (;;) {
    JobPtr job;
    {
      std::unique_lock lock(queue_mutex_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;  // same critical section as the pop: drain's predicate
                     // (queue empty && nothing in flight) never misses us
    }
    process(solver, analyzer, *slots_[slot_index], job);
    {
      std::lock_guard lock(queue_mutex_);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

void Server::process(Solver& solver, Analyzer& analyzer, Slot& slot,
                     const JobPtr& job) {
  const auto dispatched = Clock::now();
  if (job->has_deadline && dispatched >= job->deadline_at) {
    rejected_deadline_.fetch_add(1, std::memory_order_relaxed);
    respond_once(
        job, error_response(
                 job->id, op_name(job->req.op), WireError::kDeadlineExpired,
                 "deadline expired after " +
                     std::to_string(ms_between(job->enqueued, dispatched)) +
                     " ms in the queue; the request was never started"));
    return;
  }

  job->started = dispatched;
  {
    std::lock_guard lock(slot.mutex);
    slot.job = job;
  }
  if (options_.test_stall) options_.test_stall(job->req);

  std::string response;
  try {
    response = dispatch(solver, analyzer, *job);
  } catch (const std::exception& e) {
    // Program parse errors (and anything else an op throws) are the
    // client's fault at this protocol layer: typed bad_request, worker
    // survives.
    response = error_response(job->id, op_name(job->req.op),
                              WireError::kBadRequest, e.what());
  }

  {
    std::lock_guard lock(slot.mutex);
    slot.job = nullptr;
  }
  const auto finished = Clock::now();
  if (!job->responded.exchange(true, std::memory_order_acq_rel)) {
    // Count before emitting: a client that acts on the response must
    // never read a stale `completed` gauge.
    completed_.fetch_add(1, std::memory_order_relaxed);
    latency_.observe(ms_between(job->enqueued, finished));
    emit(response);
  } else {
    // The watchdog already failed this request; the late result is
    // dropped (the client must see exactly one response per request).
    late_dropped_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::string Server::dispatch(Solver& solver, Analyzer& analyzer,
                             const Job& job) {
  switch (job.req.op) {
    case Op::kSolve:
      return ok_response(job.id, "solve", solve_payload(solver, job));
    case Op::kLint: {
      const Env env = parse_program(job.req.program);
      AnalysisTarget hw;
      hw.annealer = &lint_device_;
      hw.coupling = &lint_coupling_;
      const AnalysisReport report =
          analyzer.analyze(env, solver.engine(), hw);
      return ok_response(job.id, "lint", ",\"report\":" + report.to_json());
    }
    case Op::kCertify: {
      const Env env = parse_program(job.req.program);
      // The nck_cli certify recipe: program lint with the heuristic gap
      // pass suppressed, then the sound enumeration certificate.
      Analyzer certifier;
      certifier.options().program.scale_separation = false;
      certifier.options().program.synth_var_budget =
          solver.engine().general_var_budget();
      certifier.options().program.synth_builtin =
          solver.engine().builtin_enabled();
      AnalysisReport report = certifier.analyze(env);
      ProgramCertificate cert;
      if (!report.has_errors()) {
        const CertifyOptions certify_options;
        cert = certify_program(env, solver.engine(), certify_options);
        report_certificate(env, cert, certify_options, report);
      }
      return ok_response(job.id, "certify",
                         ",\"certificate\":" + cert.to_json() +
                             ",\"report\":" + report.to_json());
    }
    case Op::kSimplify: {
      const Env env = parse_program(job.req.program);
      const ReduceOptions options;
      const ReduceResult result = reduce_program(env, options);
      const ReductionVerdict verdict =
          verify_reduction(env, result, options.verify_max_vars);
      PresolveSummary summary = summarize_reduction(env, result);
      summary.verified = verdict.checked && verdict.ok;
      summary.rejected = verdict.checked && !verdict.ok;
      std::string payload =
          ",\"simplify\":{\"changed\":" +
          std::string(result.changed() ? "true" : "false") +
          ",\"proved_unsat\":" + (result.proved_unsat ? "true" : "false") +
          ",\"verified\":" + (summary.verified ? "true" : "false") +
          ",\"rejected\":" + (summary.rejected ? "true" : "false") +
          ",\"original_vars\":" + std::to_string(summary.original_vars) +
          ",\"reduced_vars\":" + std::to_string(summary.reduced_vars) +
          ",\"original_constraints\":" +
          std::to_string(summary.original_constraints) +
          ",\"reduced_constraints\":" +
          std::to_string(summary.reduced_constraints) +
          ",\"steps\":" + std::to_string(result.steps.size()) +
          ",\"reduced_program\":\"" +
          json_escape(result.proved_unsat ? std::string()
                                          : result.reduced.to_string()) +
          "\"}";
      return ok_response(job.id, "simplify", payload);
    }
    case Op::kStats:
    case Op::kShutdown:
      break;  // handled inline by submit_line; unreachable here
  }
  throw std::logic_error("dispatch: non-queue op");
}

std::string Server::solve_payload(Solver& solver, const Job& job) {
  const Env env = parse_program(job.req.program);

  // The SolverPool idiom (util/rng stream_seed): every worker Solver shares
  // one base seed (identical device calibration and plan keys), and each
  // request gets a schedule-independent sample stream derived from its
  // admission serial, so responses do not depend on which worker happened
  // to pick the request up.
  solver.reseed(stream_seed(options_.seed, job.serial));
  solver.annealer_options() = options_.annealer;
  solver.circuit_options() = options_.circuit;
  if (options_.resilience) solver.resilience_options() = *options_.resilience;
  if (job.req.reads) solver.annealer_options().sampler.num_reads = job.req.reads;
  if (job.req.shots) solver.circuit_options().qaoa.shots = job.req.shots;

  // Per-request decomposition: reset first — worker Solvers are reused, so
  // a previous request's knobs must not leak into this one.
  solver.solve_options().decompose = decompose::DecomposeOptions{};
  if (job.req.decompose) {
    auto& d = solver.solve_options().decompose;
    d.enabled = true;
    if (job.req.subproblem_vars) d.subproblem_vars = job.req.subproblem_vars;
    if (job.req.max_rounds) d.max_rounds = job.req.max_rounds;
  }

  // Deadline recompute: whatever the queue wait left of the admission
  // budget is the solver's wall budget. A budget that ran out between the
  // dequeue gate and here simply fails fast inside solve() with the typed
  // kDeadlineExhausted (still ok:true — the daemon did its job).
  double remaining = std::numeric_limits<double>::infinity();
  if (job.has_deadline) {
    remaining = ms_between(Clock::now(), job.deadline_at);
  }
  solver.solve_options().wall_budget_ms = remaining;

  const SolveReport report = solver.solve(env, job.req.backend);
  fold_counters(report.trace);

  std::string payload = ",\"result\":{";
  payload += "\"ran\":" + std::string(report.ran ? "true" : "false");
  payload += ",\"backend\":\"" + std::string(backend_name(report.backend)) +
             "\"";
  payload += ",\"failure\":\"" +
             std::string(failure_kind_name(report.failure)) + "\"";
  if (!report.ran) {
    payload +=
        ",\"failure_detail\":\"" + json_escape(report.failure_message()) +
        "\"";
  }
  if (report.ran) {
    payload += ",\"quality\":\"" +
               std::string(quality_name(report.best_quality)) + "\"";
    payload += ",\"assignment\":" +
               assignment_json(env, report.best_assignment);
  }
  payload += ",\"samples\":{\"optimal\":" +
             std::to_string(report.counts.optimal) +
             ",\"suboptimal\":" + std::to_string(report.counts.suboptimal) +
             ",\"incorrect\":" + std::to_string(report.counts.incorrect) +
             ",\"total\":" + std::to_string(report.counts.total()) + "}";
  payload += ",\"qubits\":" + std::to_string(report.qubits_used);
  if (report.decompose) {
    const auto& d = *report.decompose;
    decomposed_.fetch_add(1, std::memory_order_relaxed);
    payload += ",\"decompose\":{\"subproblems\":" +
               std::to_string(d.subproblems) +
               ",\"rounds\":" + std::to_string(d.rounds) +
               ",\"converged\":" + (d.converged ? "true" : "false") +
               ",\"truth_exact\":" + (d.truth_exact ? "true" : "false") + "}";
  }
  payload += ",\"queue_ms\":" +
             json_number(ms_between(job.enqueued, job.started));
  payload += ",\"wall_ms\":" +
             json_number(ms_between(job.started, Clock::now()));
  payload += "}";
  if (job.req.trace) {
    payload += ",\"trace\":" + obs::trace_to_json(report.trace);
  }
  return payload;
}

void Server::watchdog_main() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.watchdog_interval_ms);
  std::unique_lock lock(queue_mutex_);
  for (;;) {
    stop_cv_.wait_for(
        lock, std::chrono::duration_cast<Clock::duration>(interval),
        [&] { return stop_; });
    if (stop_) return;
    lock.unlock();
    const auto now = Clock::now();
    for (const std::unique_ptr<Slot>& slot : slots_) {
      JobPtr job;
      {
        std::lock_guard slot_lock(slot->mutex);
        job = slot->job;
      }
      if (!job || job->responded.load(std::memory_order_acquire)) continue;
      const double busy_ms = ms_between(job->started, now);
      if (busy_ms < options_.stuck_after_ms) continue;
      if (!job->responded.exchange(true, std::memory_order_acq_rel)) {
        // Count before emitting, like the completion path: the typed
        // worker_stuck response must never race ahead of the gauge.
        worker_stuck_.fetch_add(1, std::memory_order_relaxed);
        emit(error_response(job->id, op_name(job->req.op),
                            WireError::kWorkerStuck,
                            "worker exceeded the " +
                                std::to_string(options_.stuck_after_ms) +
                                " ms service cap (busy " +
                                std::to_string(busy_ms) + " ms)"));
      }
    }
    lock.lock();
  }
}

bool Server::respond_once(const JobPtr& job, const std::string& line) {
  if (job->responded.exchange(true, std::memory_order_acq_rel)) return false;
  emit(line);
  return true;
}

void Server::emit(const std::string& line) {
  std::lock_guard lock(sink_mutex_);
  sink_(line);
}

void Server::fold_counters(const obs::TraceData& trace) {
  std::lock_guard lock(counters_mutex_);
  for (const auto& [name, value] : trace.counters) {
    obs_counters_[name] += value;
  }
}

ServerStats Server::stats() const {
  ServerStats s;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.rejected_bad_request = rejected_bad_request_.load(std::memory_order_relaxed);
  s.rejected_draining = rejected_draining_.load(std::memory_order_relaxed);
  s.rejected_deadline = rejected_deadline_.load(std::memory_order_relaxed);
  s.worker_stuck = worker_stuck_.load(std::memory_order_relaxed);
  s.late_dropped = late_dropped_.load(std::memory_order_relaxed);
  s.decomposed = decomposed_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(queue_mutex_);
    s.queue_depth = queue_.size();
    s.in_flight = in_flight_;
  }
  s.draining = draining_.load(std::memory_order_relaxed);
  s.workers = options_.num_workers;
  s.queue_capacity = options_.queue_depth;
  s.latency_count = latency_.count();
  s.p50_ms = latency_.quantile(0.50);
  s.p99_ms = latency_.quantile(0.99);
  s.mean_ms = latency_.mean();
  s.max_ms = latency_.max();
  s.cache = cache_->stats();
  const std::size_t lookups = s.cache.hits + s.cache.misses;
  s.cache_hit_rate =
      lookups ? static_cast<double>(s.cache.hits) / static_cast<double>(lookups)
              : 0.0;
  return s;
}

std::string Server::stats_json() const {
  const ServerStats s = stats();
  std::string out = "{";
  out += "\"admitted\":" + std::to_string(s.admitted);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"shed\":" + std::to_string(s.shed);
  out += ",\"rejected_bad_request\":" + std::to_string(s.rejected_bad_request);
  out += ",\"rejected_draining\":" + std::to_string(s.rejected_draining);
  out += ",\"rejected_deadline\":" + std::to_string(s.rejected_deadline);
  out += ",\"worker_stuck\":" + std::to_string(s.worker_stuck);
  out += ",\"late_dropped\":" + std::to_string(s.late_dropped);
  out += ",\"decomposed\":" + std::to_string(s.decomposed);
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"in_flight\":" + std::to_string(s.in_flight);
  out += ",\"draining\":" + std::string(s.draining ? "true" : "false");
  out += ",\"workers\":" + std::to_string(s.workers);
  out += ",\"queue_capacity\":" + std::to_string(s.queue_capacity);
  out += ",\"latency_ms\":{\"count\":" + std::to_string(s.latency_count) +
         ",\"p50\":" + json_number(s.p50_ms) +
         ",\"p99\":" + json_number(s.p99_ms) +
         ",\"mean\":" + json_number(s.mean_ms) +
         ",\"max\":" + json_number(s.max_ms) + "}";
  out += ",\"cache\":{\"hits\":" + std::to_string(s.cache.hits) +
         ",\"misses\":" + std::to_string(s.cache.misses) +
         ",\"inserts\":" + std::to_string(s.cache.inserts) +
         ",\"evictions\":" + std::to_string(s.cache.evictions) +
         ",\"entries\":" + std::to_string(s.cache.entries) +
         ",\"bytes\":" + std::to_string(s.cache.bytes) +
         ",\"hit_rate\":" + json_number(s.cache_hit_rate) + "}";
  out += ",\"counters\":{";
  {
    std::lock_guard lock(counters_mutex_);
    bool first = true;
    for (const auto& [name, value] : obs_counters_) {
      if (!first) out += ",";
      first = false;
      out += "\"" + json_escape(name) + "\":" + json_number(value);
    }
  }
  out += "}}";
  return out;
}

}  // namespace nck::serve
