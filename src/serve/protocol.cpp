#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace nck::serve {
namespace {

// Strict cursor over one request line, mirroring the obs trace reader:
// recursive descent over exactly the subset the protocol needs (one flat
// object of string/number/boolean values), failures carry an offset.
class Cursor {
 public:
  explicit Cursor(const std::string& text, std::string& why)
      : text_(text), why_(why) {}

  bool ok() const noexcept { return ok_; }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of request");
      return '\0';
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (!ok_) return;
    if (peek() != c) {
      if (ok_) fail(std::string("expected '") + c + "'");
      return;
    }
    ++pos_;
  }

  bool accept(char c) {
    if (!ok_) return false;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    std::string out;
    expect('"');
    while (ok_) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
        break;
      }
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
          break;
        }
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default:
            fail(std::string("unsupported escape '\\") + e + "'");
            break;
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  double number() {
    skip_ws();
    if (!ok_) return 0.0;
    // Accept exactly the JSON number grammar before handing the span to
    // strtod: strtod alone also parses "inf", "nan", and hex floats like
    // "0x1p4", which are not JSON and used to slip through the "strict"
    // reader (found by the fuzz_serve_protocol harness).
    const std::size_t begin_pos = json_number_extent();
    if (!ok_) return 0.0;
    const char* begin = text_.c_str() + begin_pos;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (static_cast<std::size_t>(end - begin) != pos_ - begin_pos) {
      fail("expected a number");
      return 0.0;
    }
    return value;
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected a boolean");
    return false;
  }

  /// Advances pos_ over one JSON-grammar number (-?int[.frac][e[±]exp])
  /// and returns the start offset; fails without moving past the token on
  /// anything else (leading '+', "inf", "nan", hex, a bare '.', ...).
  std::size_t json_number_extent() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const std::size_t int_begin = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ == int_begin) {
      pos_ = begin;
      fail("expected a number");
      return begin;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac_begin = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == frac_begin) {
        pos_ = begin;
        fail("expected a number");
        return begin;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      const std::size_t exp_begin = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == exp_begin) {
        pos_ = begin;
        fail("expected a number");
        return begin;
      }
    }
    return begin;
  }

  void finish() {
    if (!ok_) return;
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after request");
  }

  void fail(const std::string& reason) {
    if (!ok_) return;  // keep the first failure
    ok_ = false;
    why_ = reason + " at offset " + std::to_string(pos_);
  }

 private:
  const std::string& text_;
  std::string& why_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

bool parse_op(const std::string& name, Op* out) {
  if (name == "solve") {
    *out = Op::kSolve;
  } else if (name == "lint") {
    *out = Op::kLint;
  } else if (name == "certify") {
    *out = Op::kCertify;
  } else if (name == "simplify") {
    *out = Op::kSimplify;
  } else if (name == "stats") {
    *out = Op::kStats;
  } else if (name == "shutdown") {
    *out = Op::kShutdown;
  } else {
    return false;
  }
  return true;
}

bool parse_backend_name(const std::string& name, BackendKind* out) {
  if (name == "classical") {
    *out = BackendKind::kClassical;
  } else if (name == "annealer") {
    *out = BackendKind::kAnnealer;
  } else if (name == "circuit") {
    *out = BackendKind::kCircuit;
  } else {
    return false;
  }
  return true;
}

/// A number that must be a non-negative integer (id, reads, shots).
bool to_count(double value, std::uint64_t* out) {
  if (!(value >= 0.0) || value != std::floor(value) || value > 1e18) {
    return false;
  }
  *out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kSolve: return "solve";
    case Op::kLint: return "lint";
    case Op::kCertify: return "certify";
    case Op::kSimplify: return "simplify";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
  }
  return "?";
}

const char* wire_error_name(WireError e) noexcept {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadRequest: return "bad_request";
    case WireError::kOverloaded: return "overloaded";
    case WireError::kDraining: return "draining";
    case WireError::kDeadlineExpired: return "deadline_expired";
    case WireError::kWorkerStuck: return "worker_stuck";
  }
  return "?";
}

bool parse_request(const std::string& line, Request& out, std::string& why) {
  out = Request{};
  if (line.size() > kMaxRequestBytes) {
    why = "request line exceeds the " + std::to_string(kMaxRequestBytes) +
          "-byte cap (" + std::to_string(line.size()) + " bytes)";
    return false;
  }

  Cursor c(line, why);
  bool have_op = false;
  c.expect('{');
  if (!c.accept('}')) {
    do {
      const std::string key = c.string();
      if (!c.ok()) break;
      c.expect(':');
      if (key == "id") {
        std::uint64_t id = 0;
        if (!to_count(c.number(), &id)) {
          c.fail("\"id\" must be a non-negative integer");
          break;
        }
        out.id = id;
        out.has_id = true;
      } else if (key == "op") {
        const std::string name = c.string();
        if (c.ok() && !parse_op(name, &out.op)) {
          c.fail("unknown op \"" + name + "\"");
        }
        have_op = c.ok();
      } else if (key == "program") {
        out.program = c.string();
      } else if (key == "backend") {
        const std::string name = c.string();
        if (c.ok() && !parse_backend_name(name, &out.backend)) {
          c.fail("unknown backend \"" + name + "\"");
        }
      } else if (key == "deadline_ms") {
        out.deadline_ms = c.number();
        if (c.ok() && std::isnan(out.deadline_ms)) {
          c.fail("\"deadline_ms\" must not be NaN");
        }
      } else if (key == "reads") {
        std::uint64_t n = 0;
        if (!to_count(c.number(), &n)) {
          c.fail("\"reads\" must be a non-negative integer");
          break;
        }
        out.reads = static_cast<std::size_t>(n);
      } else if (key == "shots") {
        std::uint64_t n = 0;
        if (!to_count(c.number(), &n)) {
          c.fail("\"shots\" must be a non-negative integer");
          break;
        }
        out.shots = static_cast<std::size_t>(n);
      } else if (key == "trace") {
        out.trace = c.boolean();
      } else if (key == "decompose") {
        out.decompose = c.boolean();
      } else if (key == "subproblem_vars") {
        std::uint64_t n = 0;
        if (!to_count(c.number(), &n) || n == 0) {
          c.fail("\"subproblem_vars\" must be a positive integer");
          break;
        }
        out.subproblem_vars = static_cast<std::size_t>(n);
      } else if (key == "max_rounds") {
        std::uint64_t n = 0;
        if (!to_count(c.number(), &n) || n == 0) {
          c.fail("\"max_rounds\" must be a positive integer");
          break;
        }
        out.max_rounds = static_cast<std::size_t>(n);
      } else {
        c.fail("unknown request key \"" + key + "\"");
      }
      if (!c.ok()) break;
    } while (c.accept(','));
    c.expect('}');
  }
  c.finish();
  if (!c.ok()) return false;

  if (!have_op) {
    why = "missing required key \"op\"";
    return false;
  }
  const bool needs_program = out.op == Op::kSolve || out.op == Op::kLint ||
                             out.op == Op::kCertify || out.op == Op::kSimplify;
  if (needs_program && out.program.empty()) {
    why = std::string("op \"") + op_name(out.op) +
          "\" requires a non-empty \"program\"";
    return false;
  }
  return true;
}

std::string id_json(const Request& req) {
  return req.has_id ? std::to_string(req.id) : std::string("null");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string error_response(const std::string& id, const char* op,
                           WireError kind, const std::string& detail) {
  return "{\"id\":" + id + ",\"op\":\"" + op +
         "\",\"ok\":false,\"error\":{\"kind\":\"" + wire_error_name(kind) +
         "\",\"detail\":\"" + json_escape(detail) + "\"}}";
}

std::string ok_response(const std::string& id, const char* op,
                        const std::string& payload) {
  return "{\"id\":" + id + ",\"op\":\"" + op + "\",\"ok\":true" + payload +
         "}";
}

}  // namespace nck::serve
