// stdin/stdout transport for the serve daemon: reads newline-delimited
// request lines from fd 0 (with its own bounded line buffering — an
// oversized line is discarded as it streams in, never accumulated),
// writes one response line per request to stdout, and owns the SIGTERM
// story:
//
//   first SIGTERM   stop reading, drain gracefully (in-flight requests
//                   finish, queued ones are rejected with `draining`),
//                   flush the final stats snapshot to stderr, exit 0;
//   second SIGTERM  force exit immediately (exit code 1) — the escape
//                   hatch when a stuck worker keeps the drain from
//                   finishing.
//
// EOF on stdin and a `shutdown` request take the same graceful path as
// the first SIGTERM. Shared by the standalone `nck_serve` binary and the
// `nck_cli serve` subcommand.
#pragma once

namespace nck::serve {

/// Parses serve flags from argv[first_arg..) and runs the daemon on
/// stdin/stdout until EOF, `shutdown`, or SIGTERM. Returns the process
/// exit code (0 graceful, 2 usage error).
///
/// Flags: --workers=N --queue-depth=N --seed=N --cache-bytes=N
///        --default-deadline-ms=X --stuck-after-ms=X --reads=N --shots=N
///        --test-stall-ms=X (test hook: every request stalls its worker
///        for X ms before dispatch, to make overload/drain/watchdog
///        timing observable from a shell)
int run_serve_cli(int argc, char** argv, int first_arg);

}  // namespace nck::serve
