// Wire protocol of the nck_serve daemon: line-delimited JSON, one request
// per line in, one response per line out (responses complete out of order
// under concurrency; the echoed `id` correlates them).
//
// Request schema (unknown keys are rejected, in the spirit of the strict
// obs trace reader — the schema is ours, so silence would only hide client
// drift):
//
//   {"id": 7, "op": "solve", "program": "nck({a,b},{1})",
//    "backend": "annealer", "deadline_ms": 250, "reads": 100,
//    "shots": 4000, "trace": false}
//
//   op        solve | lint | certify | simplify | stats | shutdown
//   id        optional non-negative integer, echoed verbatim (null when
//             absent or unparsable)
//   program   required for solve/lint/certify/simplify
//   deadline_ms   wall-clock latency budget measured from *admission*;
//             time spent queued counts against it, and a request whose
//             budget ran out while queued is rejected without touching a
//             solver
//   reads/shots   per-request sample-budget overrides (0 = server default)
//   decompose     solve only: enable the qbsolv-style large-neighborhood
//             decomposition for programs past the sub-QUBO cap
//   subproblem_vars / max_rounds   decomposition knobs (positive
//             integers; only meaningful with "decompose": true)
//   trace     solve only: include the per-request obs trace (nck-trace-v1)
//             in the response
//
// Responses are `{"id":...,"op":...,"ok":true,...}` on success, or
// `{"id":...,"op":...,"ok":false,"error":{"kind":...,"detail":...}}` with
// a *typed* kind the client can branch on:
//
//   bad_request       malformed line / unknown op / oversized line (the
//                     request-line cap is kMaxRequestBytes)
//   overloaded        the bounded admission queue was full (load shed)
//   draining          the daemon is shutting down and no longer admits
//   deadline_expired  the wall-clock budget ran out while queued
//   worker_stuck      the watchdog failed the request after its worker
//                     exceeded the hard service-time cap
//
// A solve whose *solver* fails (analysis rejection, infeasible program,
// mid-solve deadline, ...) is still `ok:true` — the daemon processed the
// request; the typed FailureKind rides in `result.failure`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "backend/kinds.hpp"

namespace nck::serve {

/// Hard cap on one request line, in bytes. Longer lines are rejected with
/// `bad_request` *before* parsing (the stdio driver also discards the
/// excess without buffering it, so an adversarial unbounded line cannot
/// exhaust memory).
inline constexpr std::size_t kMaxRequestBytes = 1u << 20;  // 1 MiB

enum class Op { kSolve, kLint, kCertify, kSimplify, kStats, kShutdown };

/// "solve", "lint", ... — stable wire identifier.
const char* op_name(Op op) noexcept;

/// Typed daemon-level rejection kinds (see the file comment).
enum class WireError {
  kNone = 0,
  kBadRequest,
  kOverloaded,
  kDraining,
  kDeadlineExpired,
  kWorkerStuck,
};

/// "bad_request", "overloaded", ... — stable wire identifier.
const char* wire_error_name(WireError e) noexcept;

struct Request {
  std::uint64_t id = 0;
  bool has_id = false;
  Op op = Op::kSolve;
  std::string program;
  BackendKind backend = BackendKind::kClassical;
  /// Wall-clock latency budget in ms, measured from admission; infinity
  /// (the default) defers to the server's default_deadline_ms.
  double deadline_ms = std::numeric_limits<double>::infinity();
  std::size_t reads = 0;  // 0 = server default
  std::size_t shots = 0;  // 0 = server default
  bool trace = false;
  /// Solve only: qbsolv-style decomposition (SolveOptions::decompose).
  bool decompose = false;
  std::size_t subproblem_vars = 0;  // 0 = solver default
  std::size_t max_rounds = 0;       // 0 = solver default
};

/// Strictly parses one request line. Returns false with a human-readable
/// reason in `why` (the bad_request detail); never throws. Enforces
/// kMaxRequestBytes, known-keys-only, required fields per op, and sane
/// value domains (non-negative integral id/reads/shots, finite non-NaN
/// deadline, known op/backend names).
bool parse_request(const std::string& line, Request& out, std::string& why);

/// The `id` echo of a response: the request's id, or "null" when absent.
std::string id_json(const Request& req);

/// One complete error-response line (no trailing newline).
std::string error_response(const std::string& id, const char* op,
                           WireError kind, const std::string& detail);

/// One complete ok-response line (no trailing newline). `payload` is a
/// comma-led fragment of extra top-level fields, e.g.
/// ",\"result\":{...}" — pass "" for a bare acknowledgement.
std::string ok_response(const std::string& id, const char* op,
                        const std::string& payload);

/// Minimal JSON string escaping shared by the response builders.
std::string json_escape(const std::string& s);

}  // namespace nck::serve
