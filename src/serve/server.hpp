// Overload-safe solve daemon core (DESIGN.md §3h): a bounded admission
// queue in front of a pool of persistent worker Solvers sharing one
// content-addressed PlanCache, with per-request wall-clock deadlines,
// load shedding, a stuck-worker watchdog, and graceful drain.
//
// The request path is
//
//   submit_line  — parse (strict, capped) → typed bad_request on garbage;
//   admission    — draining? -> `draining`; queue full? -> shed with
//                  `overloaded`; else enqueue with deadline_at = now +
//                  budget (request's deadline_ms, else the server default);
//   dequeue      — a worker pops the oldest request; if its deadline
//                  expired while queued it is rejected with
//                  `deadline_expired` without touching a solver;
//   dispatch     — the *remaining* budget (deadline_at - now) propagates
//                  into SolveOptions::wall_budget_ms, so queue wait and
//                  solve time share one client-visible budget;
//   respond      — exactly-once per request (an atomic flag arbitrates
//                  between the worker and the watchdog; late results from
//                  a watchdogged worker are counted and dropped).
//
// The watchdog scans worker slots every watchdog_interval_ms and fails
// any request served longer than stuck_after_ms with a typed
// `worker_stuck` response, so one wedged solve cannot hang the daemon or
// silently eat a client's timeout. The worker thread itself is not killed
// (there is no safe way to kill a thread mid-solve); it rejoins the pool
// when the stuck call eventually returns and its result is discarded.
//
// drain() — the SIGTERM / `shutdown` path — stops admission, rejects
// every queued-but-unstarted request with `draining`, then blocks until
// all in-flight requests completed. The Server outlives drain(): `stats`
// still answers (the stdio driver prints a final snapshot), and the
// destructor joins the now-idle workers.
//
// Thread-safety: the queue, in-flight count, and stop flag share one
// mutex (the condition variables' predicate state); counters are atomics;
// worker slots carry their own small mutexes so the watchdog never blocks
// behind a running solve; responses are serialized by the sink mutex.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "backend/plan_cache.hpp"
#include "runtime/solver.hpp"
#include "serve/latency.hpp"
#include "serve/protocol.hpp"

namespace nck::serve {

struct ServerOptions {
  /// Worker threads; 0 means hardware concurrency (at least 1).
  std::size_t num_workers = 2;
  /// Bounded admission-queue depth; a full queue sheds with `overloaded`.
  std::size_t queue_depth = 64;
  /// Base seed: every worker Solver shares it (identical device
  /// calibration, hence shared plan keys); each request re-seeds the
  /// sample stream from (seed, admission serial), so results are
  /// deterministic regardless of which worker serves a request.
  std::uint64_t seed = 1234;
  /// LRU byte budget of the shared plan cache.
  std::size_t cache_bytes = backend::PlanCache::kDefaultMaxBytes;
  /// Wall-clock budget applied to requests that name no deadline_ms.
  double default_deadline_ms = std::numeric_limits<double>::infinity();
  /// Watchdog hard cap on one request's service time (dispatch to
  /// response); infinity disables the watchdog.
  double stuck_after_ms = 30000.0;
  double watchdog_interval_ms = 100.0;
  AnnealBackendOptions annealer;
  CircuitBackendOptions circuit;
  /// Per-worker solver resilience; nullopt keeps each Solver's default
  /// (which honors NCK_CHAOS=1).
  std::optional<ResilienceOptions> resilience;
  /// Test hook: runs on the worker thread after the dequeue deadline gate,
  /// before dispatch. Tests park workers here (on a latch, or a sleep) to
  /// provoke the overload, drain, and watchdog paths deterministically.
  std::function<void(const Request&)> test_stall;
};

/// Snapshot of the daemon gauges (the `stats` request payload).
struct ServerStats {
  std::size_t admitted = 0;
  std::size_t completed = 0;
  std::size_t shed = 0;                  // overloaded rejections
  std::size_t rejected_bad_request = 0;
  std::size_t rejected_draining = 0;
  std::size_t rejected_deadline = 0;     // expired while queued
  std::size_t worker_stuck = 0;          // watchdog interventions
  std::size_t late_dropped = 0;          // results after a stuck response
  std::size_t decomposed = 0;            // solves whose decompose stage ran
  std::size_t queue_depth = 0;           // current
  std::size_t in_flight = 0;             // current
  bool draining = false;
  std::size_t workers = 0;
  std::size_t queue_capacity = 0;
  std::size_t latency_count = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  backend::PlanCacheStats cache;
  double cache_hit_rate = 0.0;  // hits / (hits + misses), 0 when no lookups
};

class Server {
 public:
  /// Responses (one complete line each, no trailing newline) are pushed
  /// into `sink`, possibly from worker/watchdog threads concurrently; the
  /// Server serializes the calls, the sink just writes.
  using Sink = std::function<void(const std::string&)>;

  /// What the transport driver should do after a submit.
  enum class Submit { kContinue, kShutdown };

  Server(ServerOptions options, Sink sink);
  /// Force path: rejects anything still queued as `draining`, stops and
  /// joins the workers and the watchdog. Call drain() first for the
  /// graceful story.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Parses and admits one request line. Every call produces exactly one
  /// response through the sink, now (rejections, stats) or later (queued
  /// ops). Returns kShutdown after a `shutdown` request: admission is
  /// already closed, and the driver should stop reading and call drain().
  Submit submit_line(const std::string& line);

  /// Driver hook for an oversized line that was discarded while streaming
  /// (never fully buffered): counts a bad_request and emits the typed
  /// rejection through the serialized sink. `bytes` is how much arrived.
  void reject_oversized(std::size_t bytes);

  /// Stops admission, rejects queued-but-unstarted requests with
  /// `draining`, and blocks until every in-flight request has completed.
  /// Idempotent; concurrent callers all block until quiescence.
  void drain();

  bool draining() const noexcept {
    return draining_.load(std::memory_order_relaxed);
  }

  ServerStats stats() const;
  /// The ServerStats snapshot as one JSON object (the `stats` payload).
  std::string stats_json() const;

  backend::PlanCache& plan_cache() noexcept { return *cache_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    Request req;
    std::string id;  // id_json(req), precomputed
    std::uint64_t serial = 0;
    Clock::time_point enqueued;
    Clock::time_point deadline_at;
    bool has_deadline = false;
    Clock::time_point started;  // set at dispatch, read by the watchdog
    /// Exactly-once response arbitration (worker vs. watchdog).
    std::atomic<bool> responded{false};
  };
  using JobPtr = std::shared_ptr<Job>;

  /// One per worker; the watchdog scans these. The slot mutex only guards
  /// the job pointer hand-off, never a running solve.
  struct Slot {
    std::mutex mutex;
    JobPtr job;
  };

  void worker_main(std::size_t slot_index);
  void watchdog_main();
  void process(Solver& solver, Analyzer& analyzer, Slot& slot,
               const JobPtr& job);
  /// Op dispatch; returns the complete ok-response line. Throws on
  /// program parse errors (mapped to bad_request by process()).
  std::string dispatch(Solver& solver, Analyzer& analyzer, const Job& job);
  std::string solve_payload(Solver& solver, const Job& job);

  /// True when this call won the exactly-once race and emitted `line`.
  bool respond_once(const JobPtr& job, const std::string& line);
  void emit(const std::string& line);
  /// Folds one request trace's counters into the daemon-level aggregate.
  void fold_counters(const obs::TraceData& trace);

  ServerOptions options_;
  Sink sink_;
  std::mutex sink_mutex_;

  std::shared_ptr<backend::PlanCache> cache_;
  /// Hardware targets for the `lint` op (mirrors `nck_cli lint --target=all`).
  Device lint_device_;
  Graph lint_coupling_;

  // Queue state; the mutex also covers in_flight_ and stop_ because they
  // are predicate state of both condition variables.
  mutable std::mutex queue_mutex_;
  std::condition_variable work_cv_;   // queue became non-empty / stopping
  std::condition_variable idle_cv_;   // a request completed (drain waits)
  std::condition_variable stop_cv_;   // watchdog's private wakeup (so it
                                      // never consumes a worker's notify)
  std::deque<JobPtr> queue_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> serial_{0};

  std::atomic<std::size_t> admitted_{0};
  std::atomic<std::size_t> completed_{0};
  std::atomic<std::size_t> shed_{0};
  std::atomic<std::size_t> rejected_bad_request_{0};
  std::atomic<std::size_t> rejected_draining_{0};
  std::atomic<std::size_t> rejected_deadline_{0};
  std::atomic<std::size_t> worker_stuck_{0};
  std::atomic<std::size_t> late_dropped_{0};
  std::atomic<std::size_t> decomposed_{0};

  LatencyHistogram latency_;
  mutable std::mutex counters_mutex_;
  std::map<std::string, double> obs_counters_;

  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace nck::serve
