#include "serve/latency.hpp"

#include <algorithm>
#include <cmath>

namespace nck::serve {

std::size_t LatencyHistogram::bucket_of(double ms) noexcept {
  if (!(ms > kFirstUpperMs)) return 0;  // includes NaN and negatives
  const double raw = std::ceil(std::log(ms / kFirstUpperMs) / std::log(kGrowth));
  const std::size_t b = raw < 0.0 ? 0 : static_cast<std::size_t>(raw);
  return std::min(b, kBuckets - 1);
}

double LatencyHistogram::upper_of(std::size_t b) noexcept {
  return kFirstUpperMs * std::pow(kGrowth, static_cast<double>(b));
}

void LatencyHistogram::observe(double ms) {
  if (std::isnan(ms)) return;
  if (ms < 0.0) ms = 0.0;
  std::lock_guard lock(mutex_);
  ++counts_[bucket_of(ms)];
  ++total_;
  sum_ += ms;
  if (ms > max_) max_ = ms;
}

double LatencyHistogram::quantile(double q) const {
  std::lock_guard lock(mutex_);
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile, 1-based: ceil(q * total), at least 1.
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // The last bucket is open-ended: its nominal upper bound would
      // under-report any observation beyond the geometric range.
      if (b + 1 == kBuckets) return max_;
      return std::min(upper_of(b), max_);
    }
  }
  return max_;
}

std::size_t LatencyHistogram::count() const {
  std::lock_guard lock(mutex_);
  return static_cast<std::size_t>(total_);
}

double LatencyHistogram::mean() const {
  std::lock_guard lock(mutex_);
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

double LatencyHistogram::max() const {
  std::lock_guard lock(mutex_);
  return max_;
}

}  // namespace nck::serve
