#include "serve/stdio.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace nck::serve {
namespace {

/// 0 → running; 1 → first SIGTERM seen (graceful drain). The handler
/// force-exits the process itself on the second signal, so the flag never
/// reaches 2 in normal code.
volatile std::sig_atomic_t g_sigterm = 0;

extern "C" void on_sigterm(int) {
  if (g_sigterm) std::_Exit(1);  // second signal: force exit
  g_sigterm = 1;
}

void install_sigterm() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigterm;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: blocked read() must EINTR
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

int usage() {
  std::fprintf(
      stderr,
      "usage: nck_serve [--workers=N] [--queue-depth=N] [--seed=N]\n"
      "                 [--cache-bytes=N] [--default-deadline-ms=X]\n"
      "                 [--stuck-after-ms=X] [--reads=N] [--shots=N]\n"
      "                 [--test-stall-ms=X]\n"
      "\n"
      "Reads one JSON request per line from stdin, writes one JSON\n"
      "response per line to stdout. Ops: solve, lint, certify, simplify,\n"
      "stats, shutdown. SIGTERM drains gracefully; a second SIGTERM\n"
      "forces exit.\n");
  return 2;
}

bool parse_size(const std::string& value, std::size_t* out) {
  try {
    std::size_t pos = 0;
    const unsigned long long n = std::stoull(value, &pos);
    if (pos != value.size()) return false;
    *out = static_cast<std::size_t>(n);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_double(const std::string& value, double* out) {
  try {
    std::size_t pos = 0;
    const double x = std::stod(value, &pos);
    if (pos != value.size()) return false;
    *out = x;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

/// Reads stdin into newline-delimited lines with a hard per-line cap:
/// once a line passes kMaxRequestBytes it flips into discard mode — the
/// excess is dropped as it streams in (never buffered) and the line is
/// rejected as oversized when its newline finally arrives.
class LineReader {
 public:
  enum class Read { kLine, kOversized, kEof, kInterrupted };

  /// Blocks until one outcome is available. kLine fills `line` (without
  /// the newline); kOversized reports the discarded byte count in
  /// `oversized_bytes`; kInterrupted means a signal arrived (check
  /// g_sigterm) with no complete line consumed.
  Read next(std::string& line, std::size_t& oversized_bytes) {
    for (;;) {
      // Drain complete lines already buffered before reading more.
      const std::size_t nl = buffer_.find('\n', scan_);
      if (nl != std::string::npos) {
        if (discarding_) {
          oversized_bytes = discarded_ + nl;
          buffer_.erase(0, nl + 1);
          scan_ = 0;
          discarding_ = false;
          discarded_ = 0;
          return Read::kOversized;
        }
        line.assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        scan_ = 0;
        return Read::kLine;
      }
      scan_ = buffer_.size();
      if (!discarding_ && buffer_.size() > kMaxRequestBytes) {
        discarding_ = true;
        discarded_ = buffer_.size();
        buffer_.clear();
        scan_ = 0;
      }
      char chunk[65536];
      const ssize_t n = ::read(0, chunk, sizeof(chunk));
      if (n > 0) {
        if (discarding_) {
          // Only look for the terminating newline; drop the payload.
          const void* found = std::memchr(chunk, '\n', static_cast<std::size_t>(n));
          if (!found) {
            discarded_ += static_cast<std::size_t>(n);
            continue;
          }
          const std::size_t at = static_cast<std::size_t>(
              static_cast<const char*>(found) - chunk);
          discarded_ += at;
          buffer_.append(chunk + at, static_cast<std::size_t>(n) - at);
          continue;
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        if (!buffer_.empty() && !discarding_) {
          // Final unterminated line.
          line = std::move(buffer_);
          buffer_.clear();
          scan_ = 0;
          return Read::kLine;
        }
        return Read::kEof;
      }
      if (errno == EINTR) return Read::kInterrupted;
      return Read::kEof;  // unrecoverable read error: treat as EOF
    }
  }

 private:
  std::string buffer_;
  std::size_t scan_ = 0;     // resume offset for the newline search
  bool discarding_ = false;
  std::size_t discarded_ = 0;
};

void write_line(const std::string& line) {
  std::fwrite(line.data(), 1, line.size(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

}  // namespace

int run_serve_cli(int argc, char** argv, int first_arg) {
  ServerOptions options;
  double test_stall_ms = 0.0;
  for (int i = first_arg; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::size_t prefix) { return arg.substr(prefix); };
    bool ok = true;
    if (arg.rfind("--workers=", 0) == 0) {
      ok = parse_size(value(10), &options.num_workers);
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      ok = parse_size(value(14), &options.queue_depth) &&
           options.queue_depth > 0;
    } else if (arg.rfind("--seed=", 0) == 0) {
      std::size_t seed = 0;
      ok = parse_size(value(7), &seed);
      options.seed = seed;
    } else if (arg.rfind("--cache-bytes=", 0) == 0) {
      ok = parse_size(value(14), &options.cache_bytes);
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      ok = parse_double(value(22), &options.default_deadline_ms) &&
           options.default_deadline_ms > 0;
    } else if (arg.rfind("--stuck-after-ms=", 0) == 0) {
      ok = parse_double(value(17), &options.stuck_after_ms) &&
           options.stuck_after_ms > 0;
    } else if (arg.rfind("--reads=", 0) == 0) {
      ok = parse_size(value(8), &options.annealer.sampler.num_reads);
    } else if (arg.rfind("--shots=", 0) == 0) {
      ok = parse_size(value(8), &options.circuit.qaoa.shots);
    } else if (arg.rfind("--test-stall-ms=", 0) == 0) {
      ok = parse_double(value(16), &test_stall_ms) && test_stall_ms >= 0;
    } else {
      ok = false;
    }
    if (!ok) {
      std::fprintf(stderr, "nck_serve: bad flag '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (test_stall_ms > 0) {
    const double stall = test_stall_ms;
    options.test_stall = [stall](const Request&) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(stall));
    };
  }

  install_sigterm();
  // Workers must never receive SIGTERM (the EINTR wakeup only works if the
  // signal interrupts *this* thread's blocking read): block it around the
  // Server construction so every spawned thread inherits the blocked mask,
  // then unblock it here only.
  sigset_t term_set;
  sigemptyset(&term_set);
  sigaddset(&term_set, SIGTERM);
  sigaddset(&term_set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &term_set, nullptr);
  Server server(std::move(options), write_line);
  pthread_sigmask(SIG_UNBLOCK, &term_set, nullptr);
  std::fprintf(stderr, "nck_serve: ready (workers=%zu queue=%zu)\n",
               server.stats().workers, server.stats().queue_capacity);
  std::fflush(stderr);

  LineReader reader;
  std::string line;
  std::size_t oversized = 0;
  bool running = true;
  // A signal landing between the loop check and the read() blocks until
  // the next input byte — the second-SIGTERM force exit is the escape
  // hatch for that (tiny) window as well as for stuck drains.
  while (running && !g_sigterm) {
    switch (reader.next(line, oversized)) {
      case LineReader::Read::kLine:
        if (server.submit_line(line) == Server::Submit::kShutdown) {
          running = false;
        }
        break;
      case LineReader::Read::kOversized:
        server.reject_oversized(oversized);
        break;
      case LineReader::Read::kEof:
        running = false;
        break;
      case LineReader::Read::kInterrupted:
        break;  // loop condition re-checks g_sigterm
    }
  }

  server.drain();
  std::fprintf(stderr, "nck_serve: drained; final stats: %s\n",
               server.stats_json().c_str());
  std::fflush(stderr);
  return 0;
}

}  // namespace nck::serve
