// Raw-bytes harness for the .nck parser/compiler (DESIGN.md §3j).
//
// Input is arbitrary bytes treated as program text. The contract under
// test:
//   * parse_program throws only ParseError (incl. the typed
//     ParseLimitError) or std::invalid_argument — any other escape
//     (std::out_of_range from unchecked conversions, bad_alloc from
//     unbounded buffering, ...) crashes the harness;
//   * accepted programs round-trip: to_string() reparses to the same
//     variable/constraint shape and reaches a printing fixpoint;
//   * small accepted programs compile to a QUBO without tripping the
//     sanitizers (synthesis-budget failures are legitimate and caught).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "core/compile.hpp"
#include "core/parse.hpp"

namespace {

/// Hard shape cap before we hand a fuzzer-chosen program to the compiler:
/// synthesis is exponential in constraint width, and the harness must stay
/// fast per execution.
bool cheap_to_compile(const nck::Env& env) {
  if (env.num_vars() > 6 || env.num_constraints() > 4) return false;
  for (const nck::Constraint& c : env.constraints()) {
    if (c.cardinality() > 6) return false;
  }
  return true;
}

void abort_with(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_parse: %s: %s\n", what, detail.c_str());
  __builtin_trap();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  nck::Env env;
  try {
    env = nck::parse_program(text);
  } catch (const nck::ParseError&) {
    return 0;  // clean typed rejection
  } catch (const std::invalid_argument&) {
    return 0;  // clean semantic rejection
  }
  // Round-trip oracle: the printer and parser must agree.
  const std::string printed = env.to_string();
  nck::Env reparsed;
  try {
    reparsed = nck::parse_program(printed);
  } catch (const std::exception& e) {
    abort_with("accepted program failed to reparse", e.what());
  }
  if (reparsed.num_vars() != env.num_vars() ||
      reparsed.num_constraints() != env.num_constraints() ||
      reparsed.num_hard() != env.num_hard() ||
      reparsed.to_string() != printed) {
    abort_with("to_string/parse round-trip diverged", printed);
  }
  if (cheap_to_compile(env)) {
    try {
      const nck::CompiledQubo compiled = nck::compile(env);
      if (compiled.num_problem_vars != env.num_vars()) {
        abort_with("compile dropped program variables", printed);
      }
    } catch (const std::runtime_error&) {
      // Synthesis budget exhausted — a typed, expected refusal.
    }
  }
  return 0;
}
