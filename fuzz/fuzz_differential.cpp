// Structured differential harness (DESIGN.md §3j): fuzzer bytes decode to
// a valid bounded program (src/fuzz/generate), which then runs the full
// differential oracle (src/fuzz/differential) — every budget-admissible
// synthesizer must pass semantic certification on every constraint
// pattern, and classical/annealer/circuit solves must agree with
// brute-forced Definition 8 truth. Any divergence is a crash.
//
// Bounds are tighter than the generator defaults so one execution stays
// in the low tens of milliseconds (the annealer and the QAOA state-vector
// both ride along on every input).
#include <cstddef>
#include <cstdint>
#include <cstdio>

#include "fuzz/differential.hpp"
#include "fuzz/generate.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  nck::fuzz::GeneratorOptions generate;
  generate.max_vars = 8;
  generate.max_constraints = 4;
  generate.max_collection = 6;
  const nck::Env env = nck::fuzz::generate_program(data, size, generate);

  nck::fuzz::DifferentialOptions options;
  options.anneal_reads = 20;
  options.circuit_shots = 128;
  const nck::fuzz::DifferentialReport report =
      nck::fuzz::run_differential(env, options);
  if (!report.ok()) {
    std::fprintf(stderr,
                 "fuzz_differential: %zu divergence(s) on program:\n%s\n%s",
                 report.divergences.size(), env.to_string().c_str(),
                 report.to_string().c_str());
    __builtin_trap();
  }
  return 0;
}
