// Standalone driver for the fuzz harnesses when the toolchain has no
// libFuzzer (-fsanitize=fuzzer unsupported, e.g. plain GCC). It speaks a
// compatible subset of libFuzzer's CLI so fuzz/run_smoke.sh and CI can
// invoke either binary identically:
//
//   fuzz_parse [flags] corpus_dir_or_file...
//     -runs=N            fresh mutated executions (default: corpus only)
//     -max_total_time=S  wall-clock budget in seconds for the mutation loop
//     -seed=K            RNG seed (default 1)
//     -max_len=N         mutant size cap (default 4096)
//     -dict=FILE         libFuzzer-format token dictionary
//
// Semantics match the real thing where it matters for the smoke gate:
// every corpus input is replayed through LLVMFuzzerTestOneInput, then the
// mutation loop (bit flips, byte edits, chunk splice/erase/duplicate,
// dictionary-token insertion, crossover with another corpus entry) runs
// until the budget is spent. Any crash aborts the process with a nonzero
// exit, which is exactly what the CI job keys on. What it does *not* do is
// coverage feedback — under Clang the same harness binaries link against
// real libFuzzer and get it for free. Unknown "-" flags are ignored so
// libFuzzer invocations stay copy-pasteable.
#include <dirent.h>
#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);
extern "C" int __attribute__((weak)) LLVMFuzzerInitialize(int* argc,
                                                          char*** argv);

namespace {

using Input = std::vector<std::uint8_t>;

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool read_file(const std::string& path, Input& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in),
             std::istreambuf_iterator<char>());
  return true;
}

void collect_inputs(const std::string& path, std::vector<Input>& corpus) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    std::fprintf(stderr, "standalone driver: cannot stat '%s'\n",
                 path.c_str());
    return;
  }
  if (S_ISDIR(st.st_mode)) {
    DIR* dir = ::opendir(path.c_str());
    if (!dir) return;
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      collect_inputs(path + "/" + name, corpus);
    }
    ::closedir(dir);
    return;
  }
  Input input;
  if (read_file(path, input)) corpus.push_back(std::move(input));
}

/// Minimal libFuzzer-dictionary reader: quoted tokens (optionally
/// key="..."), with \\ \" and \xNN escapes; '#' comments.
std::vector<Input> load_dictionary(const std::string& path) {
  std::vector<Input> tokens;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t open = line.find('"');
    if (line.empty() || line[0] == '#' || open == std::string::npos) continue;
    Input token;
    for (std::size_t i = open + 1; i < line.size() && line[i] != '"'; ++i) {
      char c = line[i];
      if (c == '\\' && i + 1 < line.size()) {
        const char e = line[++i];
        if (e == 'x' && i + 2 < line.size()) {
          const std::string hex = line.substr(i + 1, 2);
          c = static_cast<char>(std::strtol(hex.c_str(), nullptr, 16));
          i += 2;
        } else {
          c = e;
        }
      }
      token.push_back(static_cast<std::uint8_t>(c));
    }
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  return tokens;
}

Input mutate(const Input& base, const std::vector<Input>& corpus,
             const std::vector<Input>& dictionary, std::size_t max_len,
             std::uint64_t& rng) {
  Input out = base;
  const std::size_t rounds = 1 + splitmix64(rng) % 4;
  for (std::size_t r = 0; r < rounds; ++r) {
    switch (splitmix64(rng) % 7) {
      case 0:  // bit flip
        if (!out.empty()) {
          out[splitmix64(rng) % out.size()] ^=
              static_cast<std::uint8_t>(1u << (splitmix64(rng) % 8));
        }
        break;
      case 1:  // random byte
        if (!out.empty()) {
          out[splitmix64(rng) % out.size()] =
              static_cast<std::uint8_t>(splitmix64(rng));
        }
        break;
      case 2:  // insert a byte
        out.insert(out.begin() +
                       static_cast<std::ptrdiff_t>(
                           out.empty() ? 0 : splitmix64(rng) % out.size()),
                   static_cast<std::uint8_t>(splitmix64(rng)));
        break;
      case 3:  // erase a chunk
        if (!out.empty()) {
          const std::size_t at = splitmix64(rng) % out.size();
          const std::size_t len =
              1 + splitmix64(rng) % (out.size() - at);
          out.erase(out.begin() + static_cast<std::ptrdiff_t>(at),
                    out.begin() + static_cast<std::ptrdiff_t>(at + len));
        }
        break;
      case 4:  // duplicate a chunk
        if (!out.empty()) {
          const std::size_t at = splitmix64(rng) % out.size();
          const std::size_t len =
              1 + splitmix64(rng) % (out.size() - at);
          Input chunk(out.begin() + static_cast<std::ptrdiff_t>(at),
                      out.begin() + static_cast<std::ptrdiff_t>(at + len));
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                     chunk.begin(), chunk.end());
        }
        break;
      case 5:  // dictionary token
        if (!dictionary.empty()) {
          const Input& token =
              dictionary[splitmix64(rng) % dictionary.size()];
          const std::size_t at =
              out.empty() ? 0 : splitmix64(rng) % out.size();
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(at),
                     token.begin(), token.end());
        }
        break;
      case 6:  // crossover with another corpus entry
        if (!corpus.empty()) {
          const Input& other = corpus[splitmix64(rng) % corpus.size()];
          if (!other.empty()) {
            const std::size_t take = splitmix64(rng) % other.size();
            const std::size_t keep =
                out.empty() ? 0 : splitmix64(rng) % out.size();
            out.resize(keep);
            out.insert(out.end(), other.begin(),
                       other.begin() + static_cast<std::ptrdiff_t>(take));
          }
        }
        break;
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

bool flag_value(const char* arg, const char* name, long long* out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atoll(arg + len + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (LLVMFuzzerInitialize) LLVMFuzzerInitialize(&argc, &argv);
  long long runs = -1;
  long long max_total_time = 0;
  long long seed = 1;
  long long max_len = 4096;
  std::vector<Input> corpus;
  std::vector<Input> dictionary;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] == '-') {
      long long value = 0;
      if (flag_value(arg, "-runs", &value)) {
        runs = value;
      } else if (flag_value(arg, "-max_total_time", &value)) {
        max_total_time = value;
      } else if (flag_value(arg, "-seed", &value)) {
        seed = value;
      } else if (flag_value(arg, "-max_len", &value)) {
        max_len = value;
      } else if (std::strncmp(arg, "-dict=", 6) == 0) {
        dictionary = load_dictionary(arg + 6);
      }
      // Other libFuzzer flags are accepted and ignored.
      continue;
    }
    collect_inputs(arg, corpus);
  }

  std::fprintf(stderr,
               "standalone fuzz driver (no libFuzzer): %zu corpus inputs, "
               "%zu dictionary tokens\n",
               corpus.size(), dictionary.size());
  std::size_t executions = 0;
  for (const Input& input : corpus) {
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executions;
  }
  std::fprintf(stderr, "corpus replay done: %zu executions\n", executions);

  if (runs < 0 && max_total_time <= 0) return 0;
  std::uint64_t rng = static_cast<std::uint64_t>(seed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(max_total_time);
  std::size_t mutated = 0;
  const Input empty;
  while (true) {
    if (runs >= 0 && mutated >= static_cast<std::size_t>(runs)) break;
    if (max_total_time > 0 && (mutated & 0x7) == 0 &&
        std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    const Input& base =
        corpus.empty() ? empty : corpus[splitmix64(rng) % corpus.size()];
    const Input mutant =
        mutate(base, corpus, dictionary,
               static_cast<std::size_t>(max_len), rng);
    LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
    ++mutated;
  }
  std::fprintf(stderr, "mutation loop done: %zu fresh executions (%zu total)\n",
               mutated, executions + mutated);
  return 0;
}
