// Raw-bytes harness for the nck_serve wire-protocol parser (DESIGN.md §3j).
//
// Input is one (attacker-controlled) request line. The contract under
// test, mirroring what the daemon relies on:
//   * serve::parse_request never throws — it returns false with a
//     non-empty human-readable reason;
//   * accepted requests satisfy the documented domains (known op, a
//     program where one is required, non-NaN deadline, positive
//     decomposition knobs when present);
//   * the response builders emit lines with no raw control bytes (one
//     request line in, one well-formed response line out — an embedded
//     newline would desynchronize the stream).
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "serve/protocol.hpp"

namespace {

void abort_with(const char* what, const std::string& detail) {
  std::fprintf(stderr, "fuzz_serve_protocol: %s: %s\n", what, detail.c_str());
  __builtin_trap();
}

void check_single_line(const std::string& response) {
  for (const char c : response) {
    if (static_cast<unsigned char>(c) < 0x20) {
      abort_with("response contains a raw control byte", response);
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string line(reinterpret_cast<const char*>(data), size);
  nck::serve::Request request;
  std::string why;
  bool accepted = false;
  try {
    accepted = nck::serve::parse_request(line, request, why);
  } catch (...) {
    abort_with("parse_request threw", line);
  }
  if (!accepted) {
    if (why.empty()) abort_with("rejection carries no reason", line);
    check_single_line(nck::serve::error_response(
        "null", "solve", nck::serve::WireError::kBadRequest, why));
    return 0;
  }
  // Documented domains of an accepted request.
  if (std::isnan(request.deadline_ms)) {
    abort_with("accepted NaN deadline", line);
  }
  const bool needs_program = request.op == nck::serve::Op::kSolve ||
                             request.op == nck::serve::Op::kLint ||
                             request.op == nck::serve::Op::kCertify ||
                             request.op == nck::serve::Op::kSimplify;
  if (needs_program && request.program.empty()) {
    abort_with("accepted program-less request", line);
  }
  check_single_line(nck::serve::ok_response(
      nck::serve::id_json(request), nck::serve::op_name(request.op),
      ",\"echo\":\"" + nck::serve::json_escape(request.program) + "\""));
  return 0;
}
