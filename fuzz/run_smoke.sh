#!/usr/bin/env bash
# Bounded fuzzing smoke gate (the CI `fuzz-smoke` job and the local
# pre-merge check). For every harness in the given build directory:
#   1. replay the committed corpus under tests/corpus/<harness>/, then
#   2. fuzz fresh mutations for a bounded wall-clock.
# Any crash/OOM/leak fails the script. Works identically whether the
# harnesses link real libFuzzer (Clang) or the bundled standalone driver
# (GCC): the flags below are honored by both.
#
# Usage: fuzz/run_smoke.sh <build-dir> [seconds-per-harness]
set -euo pipefail

build_dir=${1:?usage: fuzz/run_smoke.sh <build-dir> [seconds-per-harness]}
budget=${2:-60}
repo_dir=$(cd "$(dirname "$0")/.." && pwd)

# Fail loudly on the first sanitizer finding; detect leaks where ASan can.
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export ASAN_OPTIONS="detect_leaks=1"

status=0
for harness in fuzz_parse fuzz_serve_protocol fuzz_differential; do
  bin="$build_dir/fuzz/$harness"
  corpus="$repo_dir/tests/corpus/$harness"
  if [[ ! -x "$bin" ]]; then
    echo "run_smoke: missing harness binary $bin (configure with -DNCK_FUZZ=ON)" >&2
    exit 2
  fi
  # libFuzzer writes new corpus entries into the first corpus directory;
  # fuzz from a scratch copy so the committed corpus only changes when a
  # human promotes an entry (see DESIGN.md §3j).
  scratch=$(mktemp -d)
  cp "$corpus"/* "$scratch"/ 2>/dev/null || true
  echo "=== $harness: corpus replay + ${budget}s of fresh mutations ==="
  if ! "$bin" -max_total_time="$budget" -seed=1 \
       -dict="$repo_dir/fuzz/nck.dict" "$scratch"; then
    echo "run_smoke: $harness FAILED" >&2
    status=1
  fi
  rm -rf "$scratch"
done
exit $status
