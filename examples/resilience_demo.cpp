// Resilient-solve walkthrough: three staged QPU-session failures and the
// recovery path the solver takes through each. Every scenario prints its
// per-attempt ResilienceLog; the program exits 0 only when all three
// recoveries worked, so CI's chaos job can assert on it.
//
//   1. Two embedded qubits die mid-session -> the solver drops them from
//      the working graph, re-embeds, and the retry succeeds.
//   2. The scheduler rejects every submission -> retries exhaust and the
//      solve degrades to the classical fallback rung.
//   3. A tight session deadline -> even the minimum annealer job cannot
//      fit, so the solve falls back to classical (which is deadline-
//      exempt: it is the guaranteed landing).
#include <cstdio>
#include <iostream>

#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "runtime/solver.hpp"

using namespace nck;

namespace {

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

}  // namespace

int main() {
  const Env env = MaxCutProblem{cycle_graph(5)}.encode();
  bool all_ok = true;

  std::printf("== 1. dead qubits mid-session -> re-embed and retry ==\n");
  {
    Solver solver(42);
    solver.annealer_options().sampler.num_reads = 40;
    ResilienceOptions& r = solver.resilience_options();
    r = ResilienceOptions{};
    r.faults = FaultPlan::parse("dead:2@1");
    r.retry.max_retries = 3;
    r.retry.backoff_initial_ms = 10.0;
    const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
    report.resilience.print(std::cout);
    all_ok &= check(report.ran, "solve recovered");
    all_ok &= check(report.resilience.reembeds >= 1, "re-embedded");
    all_ok &= check(report.resilience.attempts.size() >= 2, "retried");
    all_ok &= check(!report.resilience.faults.empty(),
                    "fault recorded in the log");
  }

  std::printf("\n== 2. persistent rejections -> classical fallback ==\n");
  {
    Solver solver(42);
    solver.annealer_options().sampler.num_reads = 40;
    ResilienceOptions& r = solver.resilience_options();
    r = ResilienceOptions{};
    r.faults = FaultPlan::parse("reject");
    r.retry.max_retries = 1;
    r.retry.backoff_initial_ms = 10.0;
    r.fallback = std::vector<BackendKind>{BackendKind::kClassical};
    const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
    report.resilience.print(std::cout);
    all_ok &= check(report.ran, "solve landed");
    all_ok &= check(report.backend == BackendKind::kClassical,
                    "on the classical rung");
    all_ok &= check(report.resilience.fallbacks == 1, "one fallback taken");
    all_ok &= check(report.best_quality == Quality::kOptimal,
                    "classical answer is optimal");
  }

  std::printf("\n== 3. tight deadline -> degrade, then fall back ==\n");
  {
    Solver solver(42);
    solver.annealer_options().sampler.num_reads = 100;
    ResilienceOptions& r = solver.resilience_options();
    r = ResilienceOptions{};
    r.retry.deadline_ms = 10.0;  // below even the 10-read floor (~17 ms)
    r.fallback = std::vector<BackendKind>{BackendKind::kClassical};
    const SolveReport report = solver.solve(env, BackendKind::kAnnealer);
    report.resilience.print(std::cout);
    all_ok &= check(report.ran, "solve landed");
    all_ok &= check(report.resilience.deadline_exhausted,
                    "deadline exhaustion recorded");
    all_ok &= check(report.resilience.degradations > 0,
                    "sample budget was degraded first");
  }

  if (!all_ok) {
    std::printf("\nresilience demo FAILED\n");
    return 1;
  }
  std::printf("\nresilience demo OK\n");
  return 0;
}
