// Standalone serve daemon: line-delimited JSON requests on stdin, one
// response per line on stdout (see src/serve/protocol.hpp for the wire
// schema and src/serve/stdio.hpp for flags and signal semantics).
//
//   ./nck_serve --workers=4 --queue-depth=64 <<'EOF'
//   {"id":1,"op":"solve","program":"nck({a,b},{1})","backend":"classical"}
//   {"id":2,"op":"stats"}
//   {"id":3,"op":"shutdown"}
//   EOF
#include "serve/stdio.hpp"

int main(int argc, char** argv) {
  return nck::serve::run_serve_cli(argc, argv, 1);
}
