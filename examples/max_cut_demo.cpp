// Max Cut (Section IV-C): the soft-only NP-hard problem, in both encodings
// the paper discusses — one soft constraint per edge versus explicit
// cut-indicator variables — executed on the annealing and circuit backends.
#include <cstdio>

#include "graph/generators.hpp"
#include "problems/max_cut.hpp"
#include "runtime/solver.hpp"

int main() {
  using namespace nck;

  Rng rng(99);
  const Graph g = random_connected_gnm(10, 18, rng);
  const MaxCutProblem problem{g};
  std::printf("Random graph: %zu vertices, %zu edges; exact max cut = %zu\n\n",
              g.num_vertices(), g.num_edges(), problem.optimal_cut());

  // --- Encoding comparison (Section IV-C's efficiency argument). ---------
  const Env lean = problem.encode();
  const Env fat = problem.encode_with_edge_vars();
  std::printf("Soft-edge encoding:      %2zu vars, %2zu constraints "
              "(%zu non-symmetric)\n",
              lean.num_vars(), lean.num_constraints(), lean.num_nonsymmetric());
  std::printf("Edge-indicator encoding: %2zu vars, %2zu constraints "
              "(%zu non-symmetric)  <- the paper's rejected alternative\n\n",
              fat.num_vars(), fat.num_constraints(), fat.num_nonsymmetric());

  // --- Solve the lean encoding on all backends. ---------------------------
  Solver solver(123);
  solver.annealer_options().sampler.num_reads = 100;
  solver.circuit_options().qaoa.shots = 2000;
  for (BackendKind backend :
       {BackendKind::kClassical, BackendKind::kAnnealer, BackendKind::kCircuit}) {
    const SolveReport report = solver.solve(lean, backend);
    if (!report.ran) {
      std::printf("%-9s: %s\n", backend_name(backend), report.failure_message().c_str());
      continue;
    }
    std::printf("%-9s: cut=%zu/%zu [%s]", backend_name(backend),
                problem.cut_of(report.best_assignment), problem.optimal_cut(),
                quality_name(report.best_quality));
    if (backend == BackendKind::kAnnealer) {
      std::printf("  physical qubits=%zu", report.qubits_used);
    } else if (backend == BackendKind::kCircuit) {
      std::printf("  depth=%zu", report.circuit_depth);
    }
    std::printf("\n");
  }
  return 0;
}
