// Quickstart: the paper's introductory program
//
//   nck({a, b}, {0, 1}) /\ nck({b, c}, {1})
//
// ("neither or exactly one of a and b is TRUE, and exactly one of b and c
// is TRUE"), plus the XOR constraint of Section VI-C, executed on all three
// backends: the classical exact solver, the simulated D-Wave annealer, and
// the simulated IBM QAOA device.
#include <cstdio>

#include "core/compile.hpp"
#include "core/env.hpp"
#include "runtime/solver.hpp"

int main() {
  using namespace nck;

  // --- Build the program through the DSL. --------------------------------
  Env env;
  const VarId a = env.var("a"), b = env.var("b"), c = env.var("c");
  env.nck({a, b}, {0, 1});
  env.nck({b, c}, {1});

  std::printf("Program:\n%s\n\n", env.to_string().c_str());

  // --- Inspect the compiled QUBO (the portable IR of Section V). ---------
  const CompiledQubo compiled = compile(env);
  std::printf("Compiled QUBO over %zu variables (+%zu ancillas):\n  %s\n\n",
              compiled.num_problem_vars, compiled.num_ancillas,
              compiled.qubo.to_string().c_str());

  // --- Run on every backend. ----------------------------------------------
  Solver solver(/*seed=*/2022);
  solver.annealer_options().sampler.num_reads = 100;  // the paper's setting
  solver.circuit_options().qaoa.shots = 4000;         // the paper's setting

  for (BackendKind backend :
       {BackendKind::kClassical, BackendKind::kAnnealer, BackendKind::kCircuit}) {
    const SolveReport report = solver.solve(env, backend);
    if (!report.ran) {
      std::printf("%-9s: did not run (%s)\n", backend_name(backend),
                  report.failure_message().c_str());
      continue;
    }
    std::printf("%-9s: a=%d b=%d c=%d  [%s]", backend_name(backend),
                static_cast<int>(report.best_assignment[a]),
                static_cast<int>(report.best_assignment[b]),
                static_cast<int>(report.best_assignment[c]),
                quality_name(report.best_quality));
    if (report.qubits_used > 0) {
      std::printf("  qubits=%zu", report.qubits_used);
    }
    std::printf("\n");
  }

  // --- Bonus: the XOR constraint (Section VI-C). --------------------------
  // nck({a, b, c}, {0, 2}) encodes c == a XOR b... more precisely "an even
  // number, but not all, of a, b, c are TRUE". It needs one ancilla qubit.
  Env xor_env;
  const VarId xa = xor_env.var("a"), xb = xor_env.var("b"),
              xc = xor_env.var("c");
  xor_env.nck({xa, xb, xc}, {0, 2});
  const CompiledQubo xor_compiled = compile(xor_env);
  std::printf("\nXOR constraint nck({a, b, c}, {0, 2}) compiles to a QUBO on "
              "%zu + %zu ancilla qubits:\n  %s\n",
              xor_compiled.num_problem_vars, xor_compiled.num_ancillas,
              xor_compiled.qubo.to_string().c_str());
  return 0;
}
