// Command-line NchooseK runner: reads a program in the text format of
// core/parse.hpp from a file (or stdin with "-") and executes it on the
// chosen backend, or statically analyzes it without running anything.
//
//   nck_cli [solve] [--backend=classical|annealer|circuit] [--seed=N]
//           [--reads=N] [--sweeps=N] [--replicas=N] [--shots=N]
//           [--trace[=table|json]]
//           [--decompose] [--subproblem-vars=N] [--max-rounds=N]
//           [--faults=SPEC] [--fault-seed=N] [--max-retries=N]
//           [--deadline-ms=X] [--fallback=b1,b2,...] <program-file|->
//
// `--decompose` turns on the qbsolv-style large-neighborhood loop
// (DESIGN.md §3i): programs whose post-presolve size exceeds the
// per-sub-QUBO cap (`--subproblem-vars`, default 65) are partitioned,
// clamped to the incumbent, and iterated for at most `--max-rounds`
// rounds. The size flags imply `--decompose`.
//   nck_cli solve --batch [--backend=...|portfolio] [--threads=N]
//           <program-file>...
//   nck_cli lint [--json] [--target=program|annealer|circuit|all]
//           <program-file|->
//   nck_cli certify [--json] [--hard-margin=X] <program-file|->
//   nck_cli simplify [--json] [--emit=FILE] <program-file|->
//
// `lint` runs the nck::analysis passes; `certify` additionally proves,
// by exhaustive enumeration, that every constraint's synthesized QUBO
// has exactly the constraint's satisfying assignments as its ground
// states, and that every certified hard penalty gap dominates the total
// soft energy (NCK-V000/V001/V002). --json emits the machine-readable
// report; for certify it wraps the structured certificate artifact and
// the diagnostics in one document.
//
// `simplify` runs the abstract-interpretation presolve (dataflow fixpoint
// plus the analysis/reduce catalog) and prints the reduction steps, the
// equivalence-certification verdict, and the reduced program in the same
// text format this tool parses. `--emit=FILE` additionally writes the
// reduced program to FILE (so a downstream `lint`/`certify`/`solve` can
// consume it); `--json` emits a machine-readable document that includes
// the original and reduced ground truths on enumerable instances, letting
// CI assert `original.best == reduced.best + soft_always_satisfied`.
//
// The subcommands share one exit-code contract:
//   0  no error-severity diagnostic (simplify: a sound, possibly identity,
//      reduction),
//   1  error diagnostics / the program is provably broken (simplify:
//      presolve proved the hard constraints unsatisfiable, or the reduction
//      failed its equivalence certification),
//   2  the analysis itself could not run: unreadable/unparsable program,
//      bad usage, or constraint QUBO synthesis failure (NCK-Q000 /
//      a "synthesis failed" certificate).
//
// The resilience flags exercise the fault-tolerant solve layer:
// `--faults` takes the spec grammar of resilience/fault.hpp (e.g.
// "dead:2@1" kills two embedded qubits on the first attempt),
// `--max-retries` allows that many extra attempts per backend with
// modeled exponential backoff, `--deadline-ms` sets the modeled session
// budget (sample counts are halved under pressure), and `--fallback`
// names the backends tried after the primary one gives up. When any
// attempt failed or recovered, the per-attempt resilience log is printed
// after the result.
//
// `--trace` prints the per-stage observability trace of the solve
// (compile/synth/embed/anneal or transpile/sample spans, synthesis cache
// counters, chain-break metrics) as aligned tables; `--trace=json` emits
// the nck-trace-v1 JSON document instead.
//
// `--batch` solves every listed program concurrently on a SolverPool
// (`--threads=N`, default: hardware concurrency) sharing one plan cache;
// results are printed in input order and are independent of the thread
// count. `--backend=portfolio` races classical, annealer, and circuit per
// program and keeps the best-classified result. In batch mode `--trace`
// prints the stitched batch trace (one `taskN` root per program).
//
// Example program:
//   # minimum vertex cover of a triangle
//   nck({a, b}, {1, 2}) /\ nck({a, c}, {1, 2}) /\ nck({b, c}, {1, 2})
//   nck({a}, {0}, soft) nck({b}, {0}, soft) nck({c}, {0}, soft)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "analysis/certify.hpp"
#include "analysis/reduce/reduce.hpp"
#include "circuit/coupling.hpp"
#include "core/parse.hpp"
#include "obs/json.hpp"
#include "runtime/pool.hpp"
#include "runtime/solver.hpp"
#include "serve/stdio.hpp"

using namespace nck;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nck_cli [solve] [--backend=classical|annealer|circuit] "
               "[--seed=N] [--reads=N] [--sweeps=N] [--replicas=N] "
               "[--shots=N] [--trace[=table|json]] "
               "[--decompose] [--subproblem-vars=N] [--max-rounds=N] "
               "[--faults=SPEC] [--fault-seed=N] [--max-retries=N] "
               "[--deadline-ms=X] [--fallback=b1,b2,...] <program-file|->\n"
               "       nck_cli solve --batch [--backend=...|portfolio] "
               "[--threads=N] <program-file>...\n"
               "       nck_cli lint [--json] "
               "[--target=program|annealer|circuit|all] <program-file|->\n"
               "       nck_cli certify [--json] [--hard-margin=X] "
               "<program-file|->\n"
               "       nck_cli simplify [--json] [--emit=FILE] "
               "<program-file|->\n"
               "       nck_cli serve [--workers=N] [--queue-depth=N] "
               "[--seed=N] [--default-deadline-ms=X] [--stuck-after-ms=X]\n");
  return 2;
}

/// "classical" / "annealer" / "circuit" -> BackendKind.
bool parse_backend(const std::string& value, BackendKind* out) {
  if (value == "classical") {
    *out = BackendKind::kClassical;
  } else if (value == "annealer") {
    *out = BackendKind::kAnnealer;
  } else if (value == "circuit") {
    *out = BackendKind::kCircuit;
  } else {
    return false;
  }
  return true;
}

bool read_program(const char* path, Env& env) {
  try {
    if (std::strcmp(path, "-") == 0) {
      env = parse_program(std::cin);
    } else {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "nck_cli: cannot open '%s'\n", path);
        return false;
      }
      env = parse_program(in);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nck_cli: %s\n", e.what());
    return false;
  }
  return true;
}

int run_lint(int argc, char** argv) {
  bool json = false;
  std::string target = "all";
  const char* path = nullptr;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--target=", 0) == 0) {
      target = arg.substr(9);
      if (target != "program" && target != "annealer" && target != "circuit" &&
          target != "all") {
        return usage();
      }
    } else if (!path) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  Env env;
  if (!read_program(path, env)) return 2;

  Analyzer analyzer;
  AnalysisReport report;
  if (target == "program") {
    report = analyzer.analyze(env);
  } else {
    Rng device_rng(1234 ^ 0xD3071CEull);
    const Device device = advantage_4_1(device_rng);
    const Graph coupling = brooklyn_coupling();
    AnalysisTarget hw;
    if (target == "annealer" || target == "all") hw.annealer = &device;
    if (target == "circuit" || target == "all") hw.coupling = &coupling;
    SynthEngine engine;
    report = analyzer.analyze(env, engine, hw);
  }

  if (json) {
    std::cout << report.to_json() << "\n";
  } else {
    report.print(std::cout);
  }
  if (report.has_code(DiagCode::kSynthesisFailed)) return 2;
  return report.has_errors() ? 1 : 0;
}

int run_certify(int argc, char** argv) {
  bool json = false;
  CertifyOptions options;
  const char* path = nullptr;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--hard-margin=", 0) == 0) {
      try {
        options.hard_margin = std::stod(arg.substr(14));
      } catch (const std::exception&) {
        return usage();
      }
    } else if (!path) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  Env env;
  if (!read_program(path, env)) return 2;

  // Program-level lint first (a provably broken program is not worth
  // enumerating), with the heuristic NCK-P007 suppressed in favor of the
  // sound NCK-V001/V002 dominance check below.
  SynthEngine engine;
  Analyzer analyzer;
  analyzer.options().program.scale_separation = false;
  analyzer.options().program.synth_var_budget = engine.general_var_budget();
  analyzer.options().program.synth_builtin = engine.builtin_enabled();
  AnalysisReport report = analyzer.analyze(env);

  ProgramCertificate cert;
  bool internal_failure = false;
  if (!report.has_errors()) {
    cert = certify_program(env, engine, options);
    report_certificate(env, cert, options, report);
    for (const ConstraintCertificate& c : cert.constraints) {
      internal_failure = internal_failure ||
                         c.error.rfind("synthesis failed", 0) == 0;
    }
  }

  if (json) {
    std::cout << "{\"certificate\":" << cert.to_json()
              << ",\"report\":" << report.to_json() << "}\n";
  } else {
    std::printf("certificate: %s (%zu constraint(s), max_soft_energy=%g, "
                "hard_scale=%g)\n",
                cert.ok ? "ok" : "FAILED", cert.constraints.size(),
                cert.max_soft_energy, cert.hard_scale);
    for (const ConstraintCertificate& c : cert.constraints) {
      std::printf("  #%zu %-4s %-7s d=%zu a=%zu gap=%g observed=%g via %s%s%s\n",
                  c.constraint, c.soft ? "soft" : "hard",
                  c.ok ? "proved" : "FAILED", c.num_vars, c.num_ancillas,
                  c.declared_gap, c.observed_gap, c.method.c_str(),
                  c.error.empty() ? "" : ": ", c.error.c_str());
    }
    report.print(std::cout);
  }
  if (internal_failure) return 2;
  return report.has_errors() ? 1 : 0;
}

/// Minimal JSON string escaping (quotes, backslash, control characters) —
/// mirrors the file-local helpers in analysis/diagnostic.cpp.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

int run_simplify(int argc, char** argv) {
  bool json = false;
  const char* emit_path = nullptr;
  const char* path = nullptr;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit_path = argv[i] + 7;
      if (*emit_path == '\0') return usage();
    } else if (!path) {
      path = argv[i];
    } else {
      return usage();
    }
  }
  if (!path) return usage();

  Env env;
  if (!read_program(path, env)) return 2;

  const ReduceOptions options;
  const ReduceResult result = reduce_program(env, options);
  const ReductionVerdict verdict =
      verify_reduction(env, result, options.verify_max_vars);
  PresolveSummary summary = summarize_reduction(env, result);
  summary.verified = verdict.checked && verdict.ok;
  summary.rejected = verdict.checked && !verdict.ok;

  // The ground truths back the CI equivalence gate: on enumerable
  // instances, original.best must equal reduced.best plus the constant
  // soft_always_satisfied tallied by decided-soft removal.
  const bool truth_checked =
      !result.proved_unsat && !summary.rejected &&
      env.num_vars() <= options.verify_max_vars &&
      result.reduced.num_vars() <= options.verify_max_vars;
  GroundTruth original_truth, reduced_truth;
  if (truth_checked) {
    original_truth = ground_truth(env);
    reduced_truth = ground_truth(result.reduced);
  }

  const std::string reduced_text =
      result.proved_unsat ? std::string() : result.reduced.to_string();
  if (emit_path && !result.proved_unsat && !summary.rejected) {
    std::ofstream out(emit_path);
    if (!out) {
      std::fprintf(stderr, "nck_cli: cannot write '%s'\n", emit_path);
      return 2;
    }
    out << reduced_text;
    if (!reduced_text.empty() && reduced_text.back() != '\n') out << "\n";
  }

  if (json) {
    std::ostringstream os;
    os << "{\"original\":{\"vars\":" << env.num_vars()
       << ",\"hard\":" << env.num_hard() << ",\"soft\":" << env.num_soft()
       << "},\"reduced\":{\"vars\":" << result.reduced.num_vars()
       << ",\"hard\":" << result.reduced.num_hard()
       << ",\"soft\":" << result.reduced.num_soft()
       << "},\"changed\":" << (result.changed() ? "true" : "false")
       << ",\"proved_unsat\":" << (result.proved_unsat ? "true" : "false")
       << ",\"needed_pairs\":" << (result.needed_pairs ? "true" : "false")
       << ",\"components\":" << result.components << ",\"forced\":[";
    bool first = true;
    for (std::size_t v = 0; v < result.trace.forced.size(); ++v) {
      if (result.trace.forced[v] == ForcedValue::kUnknown) continue;
      if (!first) os << ",";
      first = false;
      os << "{\"var\":\"" << json_escape(env.var_name(static_cast<VarId>(v)))
         << "\",\"value\":"
         << (result.trace.forced[v] == ForcedValue::kTrue ? "true" : "false")
         << "}";
    }
    os << "],\"steps\":[";
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      const ReductionStep& s = result.steps[i];
      if (i) os << ",";
      os << "{\"rule\":\"" << reduction_rule_name(s.rule)
         << "\",\"index\":" << s.index << ",\"other\":" << s.other
         << ",\"detail\":\"" << json_escape(s.detail) << "\"}";
    }
    os << "],\"soft_always_satisfied\":" << result.trace.soft_always_satisfied
       << ",\"soft_never_satisfied\":" << result.trace.soft_never_satisfied
       << ",\"verification\":{\"checked\":"
       << (verdict.checked ? "true" : "false")
       << ",\"ok\":" << (verdict.ok ? "true" : "false") << ",\"detail\":\""
       << json_escape(verdict.detail) << "\"}"
       << ",\"truth\":{\"checked\":" << (truth_checked ? "true" : "false");
    if (truth_checked) {
      os << ",\"original\":{\"feasible\":"
         << (original_truth.feasible ? "true" : "false")
         << ",\"best_soft_satisfied\":" << original_truth.best_soft_satisfied
         << "},\"reduced\":{\"feasible\":"
         << (reduced_truth.feasible ? "true" : "false")
         << ",\"best_soft_satisfied\":" << reduced_truth.best_soft_satisfied
         << "}";
    }
    os << "},\"reduced_program\":\"" << json_escape(reduced_text) << "\"}";
    std::cout << os.str() << "\n";
  } else {
    std::printf("presolve: %zu -> %zu variable(s), %zu -> %zu constraint(s)"
                "%s%s\n",
                summary.original_vars, summary.reduced_vars,
                summary.original_constraints, summary.reduced_constraints,
                result.needed_pairs ? ", via pair mining" : "",
                result.proved_unsat ? ", UNSATISFIABLE" : "");
    for (const ReductionStep& s : result.steps) {
      const std::string other = s.other == s.index
                                    ? std::string()
                                    : " (by #" + std::to_string(s.other) + ")";
      std::printf("  %-20s #%zu%s %s\n", reduction_rule_name(s.rule), s.index,
                  other.c_str(), s.detail.c_str());
    }
    if (result.components >= 2) {
      std::printf("  reduced program splits into %zu independent "
                  "component(s)\n", result.components);
    }
    if (result.trace.soft_always_satisfied ||
        result.trace.soft_never_satisfied) {
      std::printf("  soft offsets: +%zu always satisfied, %zu never "
                  "satisfiable\n", result.trace.soft_always_satisfied,
                  result.trace.soft_never_satisfied);
    }
    if (!verdict.checked) {
      std::printf("verification: skipped (program too large to enumerate; "
                  "per-rule invariants only)\n");
    } else if (verdict.ok) {
      std::printf("verification: equivalence proved by exhaustive "
                  "enumeration\n");
    } else {
      std::printf("verification: REJECTED: %s\n", verdict.detail.c_str());
    }
    if (truth_checked) {
      std::printf("ground truth: original %s best=%zu, reduced %s best=%zu "
                  "(+%zu always-satisfied)\n",
                  original_truth.feasible ? "feasible" : "infeasible",
                  original_truth.best_soft_satisfied,
                  reduced_truth.feasible ? "feasible" : "infeasible",
                  reduced_truth.best_soft_satisfied,
                  result.trace.soft_always_satisfied);
    }
    if (!result.proved_unsat) {
      std::printf("reduced program:\n%s%s", reduced_text.c_str(),
                  (!reduced_text.empty() && reduced_text.back() != '\n')
                      ? "\n"
                      : "");
    }
  }
  return (result.proved_unsat || summary.rejected) ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "lint") == 0) {
    return run_lint(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "certify") == 0) {
    return run_certify(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "simplify") == 0) {
    return run_simplify(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    // The daemon mode (identical to the standalone nck_serve binary):
    // line-delimited JSON requests on stdin, responses on stdout.
    return serve::run_serve_cli(argc, argv, 2);
  }

  BackendKind backend = BackendKind::kClassical;
  std::uint64_t seed = 1234;
  std::size_t reads = 100, shots = 4000;
  std::size_t sweeps = 0, replicas = 0;  // 0 = sampler defaults
  enum class TraceMode { kOff, kTable, kJson };
  TraceMode trace_mode = TraceMode::kOff;
  ResilienceOptions resilience;
  decompose::DecomposeOptions decompose;
  bool batch = false;
  bool portfolio = false;
  std::size_t threads = 0;  // 0 = hardware concurrency
  std::vector<const char*> paths;

  // "solve" is an optional subcommand name (symmetry with "lint").
  const int first_arg = argc >= 2 && std::strcmp(argv[1], "solve") == 0 ? 2 : 1;
  for (int i = first_arg; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--backend=", 0) == 0) {
      if (arg.substr(10) == "portfolio") {
        portfolio = true;
      } else if (!parse_backend(arg.substr(10), &backend)) {
        return usage();
      }
    } else if (arg == "--batch") {
      batch = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::stoull(arg.substr(10));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--reads=", 0) == 0) {
      reads = std::stoull(arg.substr(8));
    } else if (arg.rfind("--sweeps=", 0) == 0) {
      sweeps = std::stoull(arg.substr(9));
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::stoull(arg.substr(11));
    } else if (arg.rfind("--shots=", 0) == 0) {
      shots = std::stoull(arg.substr(8));
    } else if (arg == "--decompose") {
      decompose.enabled = true;
    } else if (arg.rfind("--subproblem-vars=", 0) == 0) {
      decompose.enabled = true;
      decompose.subproblem_vars = std::stoull(arg.substr(18));
    } else if (arg.rfind("--max-rounds=", 0) == 0) {
      decompose.enabled = true;
      decompose.max_rounds = std::stoull(arg.substr(13));
    } else if (arg == "--trace" || arg == "--trace=table") {
      trace_mode = TraceMode::kTable;
    } else if (arg == "--trace=json") {
      trace_mode = TraceMode::kJson;
    } else if (arg.rfind("--faults=", 0) == 0) {
      try {
        resilience.faults = FaultPlan::parse(arg.substr(9));
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "nck_cli: %s\n", e.what());
        return usage();
      }
    } else if (arg.rfind("--fault-seed=", 0) == 0) {
      resilience.fault_seed = std::stoull(arg.substr(13));
    } else if (arg.rfind("--max-retries=", 0) == 0) {
      resilience.retry.max_retries = std::stoull(arg.substr(14));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      resilience.retry.deadline_ms = std::stod(arg.substr(14));
    } else if (arg.rfind("--fallback=", 0) == 0) {
      // An explicitly empty chain flows through as kBadOptions (the
      // solver owns option validation, not the CLI).
      resilience.fallback.emplace();
      const std::string chain = arg.substr(11);
      std::size_t start = 0;
      while (start < chain.size()) {
        const std::size_t comma = chain.find(',', start);
        const std::size_t end = comma == std::string::npos ? chain.size()
                                                           : comma;
        BackendKind rung;
        if (!parse_backend(chain.substr(start, end - start), &rung)) {
          return usage();
        }
        resilience.fallback->push_back(rung);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (portfolio) batch = true;  // a portfolio race always runs on the pool
  if (paths.empty()) return usage();
  if (!batch && paths.size() > 1) return usage();

  if (batch) {
    std::vector<Env> envs(paths.size());
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (!read_program(paths[i], envs[i])) return 1;
    }

    PoolOptions options;
    options.num_threads = threads;
    options.seed = seed;
    options.annealer.sampler.num_reads = reads;
    if (sweeps > 0) options.annealer.sampler.num_sweeps = sweeps;
    if (replicas > 0) options.annealer.sampler.num_replicas = replicas;
    options.circuit.qaoa.shots = shots;
    if (resilience.active()) options.resilience = resilience;
    if (decompose.enabled) {
      SolveOptions solve_options;
      solve_options.decompose = decompose;
      options.solve = solve_options;
    }
    SolverPool pool(options);
    std::printf("batch: %zu program(s), backend=%s\n", envs.size(),
                portfolio ? "portfolio" : backend_name(backend));
    const BatchReport report = portfolio ? pool.solve_portfolio(envs)
                                         : pool.solve_all(envs, backend);

    for (std::size_t i = 0; i < envs.size(); ++i) {
      const SolveReport& r = report.reports[i];
      if (!r.ran) {
        std::printf("task%zu %-24s did not run [%s]: %s\n", i, paths[i],
                    failure_kind_name(r.failure), r.failure_message().c_str());
        continue;
      }
      std::printf("task%zu %-24s %-9s %-10s", i, paths[i],
                  backend_name(r.backend), quality_name(r.best_quality));
      if (r.num_samples > 1) {
        std::printf("  %zu/%zu samples optimal", r.counts.optimal,
                    r.counts.total());
      }
      std::printf("\n");
      if (portfolio) {
        for (const SolveReport& c : report.candidates[i]) {
          std::printf("    %-9s %s\n", backend_name(c.backend),
                      c.ran ? quality_name(c.best_quality)
                            : failure_kind_name(c.failure));
        }
      }
    }
    std::printf("plan cache: %zu hits, %zu misses, %zu evictions, "
                "%zu bytes in %zu entries\n",
                report.cache.hits, report.cache.misses,
                report.cache.evictions, report.cache.bytes,
                report.cache.entries);

    if (trace_mode == TraceMode::kTable) {
      std::printf("\ntrace:\n");
      obs::print_trace(std::cout, report.trace);
    } else if (trace_mode == TraceMode::kJson) {
      std::cout << obs::trace_to_json(report.trace) << "\n";
    }
    return report.solved() == envs.size() ? 0 : 1;
  }

  Env env;
  if (!read_program(paths.front(), env)) return 1;

  std::printf("program: %zu variables, %zu hard + %zu soft constraints "
              "(%zu non-symmetric classes)\n",
              env.num_vars(), env.num_hard(), env.num_soft(),
              env.num_nonsymmetric());

  Solver solver(seed);
  solver.annealer_options().sampler.num_reads = reads;
  if (sweeps > 0) solver.annealer_options().sampler.num_sweeps = sweeps;
  if (replicas > 0) solver.annealer_options().sampler.num_replicas = replicas;
  solver.circuit_options().qaoa.shots = shots;
  solver.resilience_options() = resilience;
  solver.solve_options().decompose = decompose;
  const SolveReport report = solver.solve(env, backend);
  if (!report.analysis.empty()) {
    std::fprintf(stderr, "static analysis:\n");
    report.analysis.print(std::cerr);
  }
  const auto print_trace = [&] {
    if (trace_mode == TraceMode::kTable) {
      std::printf("\ntrace:\n");
      obs::print_trace(std::cout, report.trace);
    } else if (trace_mode == TraceMode::kJson) {
      std::cout << obs::trace_to_json(report.trace) << "\n";
    }
  };

  const auto print_resilience = [&] {
    if (!report.resilience.empty()) report.resilience.print(std::cout);
  };

  if (!report.ran) {
    std::printf("%s backend did not run [%s]: %s\n",
                backend_name(report.backend),
                failure_kind_name(report.failure),
                report.failure_message().c_str());
    print_resilience();
    print_trace();
    return 1;
  }

  std::printf("backend: %s\nresult:  %s\n", backend_name(report.backend),
              quality_name(report.best_quality));
  for (std::size_t v = 0; v < env.num_vars(); ++v) {
    std::printf("  %s = %d\n", env.var_name(static_cast<VarId>(v)).c_str(),
                static_cast<int>(report.best_assignment[v]));
  }
  if (report.num_samples > 1) {
    std::printf("samples: %zu optimal, %zu suboptimal, %zu incorrect of %zu\n",
                report.counts.optimal, report.counts.suboptimal,
                report.counts.incorrect, report.counts.total());
  }
  if (report.qubits_used) {
    std::printf("qubits used: %zu\n", report.qubits_used);
  }
  if (report.decompose) {
    const auto& d = *report.decompose;
    std::printf("decompose: %zu subproblem(s) over %zu variable(s), "
                "%zu round(s)%s%s\n",
                d.subproblems, d.num_vars, d.rounds,
                d.converged ? ", converged" : "",
                d.truth_exact ? "" : " (truth referenced to incumbent)");
  }
  print_resilience();
  print_trace();
  return report.best_quality == Quality::kIncorrect ? 1 : 0;
}
