// 3-SAT (Section VI-A-f): the problem whose NchooseK encoding choice the
// paper discusses at length. Shows both encodings — dual-rail companion
// variables versus repeated variables — and solves a random planted
// instance classically and on the annealer.
#include <cstdio>

#include "problems/ksat.hpp"
#include "runtime/solver.hpp"

int main() {
  using namespace nck;

  Rng rng(17);
  const KSatProblem problem{random_ksat(/*num_vars=*/8, /*num_clauses=*/24,
                                        /*k=*/3, rng)};
  std::printf("Random planted 3-SAT: %zu variables, %zu clauses\n\n",
              problem.instance.num_vars, problem.instance.clauses.size());

  const Env dual = problem.encode_dual_rail();
  const Env repeated = problem.encode_repeated();
  std::printf("Dual-rail encoding: %2zu vars, %2zu constraints, "
              "%zu non-symmetric classes\n",
              dual.num_vars(), dual.num_constraints(), dual.num_nonsymmetric());
  std::printf("Repeated-variable:  %2zu vars, %2zu constraints, "
              "%zu non-symmetric classes (worst case k, per the paper)\n\n",
              repeated.num_vars(), repeated.num_constraints(),
              repeated.num_nonsymmetric());

  Solver solver(55);
  solver.annealer_options().sampler.num_reads = 100;
  for (const auto& [label, env] :
       {std::pair<const char*, const Env&>{"dual-rail", dual},
        std::pair<const char*, const Env&>{"repeated", repeated}}) {
    for (BackendKind backend :
         {BackendKind::kClassical, BackendKind::kAnnealer}) {
      const SolveReport report = solver.solve(env, backend);
      if (!report.ran) {
        std::printf("%-10s %-9s: %s\n", label, backend_name(backend),
                    report.failure_message().c_str());
        continue;
      }
      std::printf("%-10s %-9s: %s, assignment satisfies formula: %s",
                  label, backend_name(backend),
                  quality_name(report.best_quality),
                  problem.verify(report.best_assignment) ? "yes" : "NO");
      if (backend == BackendKind::kAnnealer) {
        std::printf("  (%zu/%zu reads optimal, %zu qubits)",
                    report.counts.optimal, report.counts.total(),
                    report.qubits_used);
      }
      std::printf("\n");
    }
  }
  return 0;
}
