// Section IV walkthrough: why Minimum Vertex Cover needs soft constraints.
//
// Recreates the paper's running example (the 5-vertex graph of Fig 2),
// first showing that the hard-only nck({u,v},{1}) formulation is
// unsatisfiable on a triangle (Section IV-B), then solving the proper
// hard + soft formulation (Fig 5) on the classical and annealing backends.
#include <cstdio>

#include "classical/exact_solver.hpp"
#include "problems/vertex_cover.hpp"
#include "runtime/solver.hpp"

int main() {
  using namespace nck;

  // The graph of Fig 2: vertices a..e, edges ab, ac, bc, cd, de.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  const char* names = "abcde";

  // --- Section IV-B: the naive hard-only attempt fails on the triangle. --
  {
    Env naive;
    const auto v = naive.new_vars(5, "v");
    for (const auto& [s, t] : g.edges()) naive.nck({v[s], v[t]}, {1});
    const ClassicalSolution solution = solve_exact(naive);
    std::printf("Hard-only nck({u,v},{1}) per edge: %s (as Section IV-B "
                "predicts for the a-b-c triangle)\n\n",
                solution.feasible ? "satisfiable?!" : "UNSATISFIABLE");
  }

  // --- Fig 4: nck({u,v},{1,2}) finds *a* cover, not a minimum one. -------
  {
    Env relaxed;
    const auto v = relaxed.new_vars(5, "v");
    for (const auto& [s, t] : g.edges()) relaxed.nck({v[s], v[t]}, {1, 2});
    const ClassicalSolution solution = solve_exact(relaxed);
    std::size_t size = 0;
    for (bool bit : solution.assignment) size += bit;
    std::printf("Hard-only nck({u,v},{1,2}): feasible, but any cover "
                "satisfies it (got size %zu; even taking all 5 would)\n\n",
                size);
  }

  // --- Fig 5: hard edge constraints + soft minimization constraints. -----
  const VertexCoverProblem problem{g};
  const Env env = problem.encode();
  std::printf("Full program (%zu hard + %zu soft constraints, "
              "%zu non-symmetric classes):\n%s\n\n",
              env.num_hard(), env.num_soft(), env.num_nonsymmetric(),
              env.to_string().c_str());

  Solver solver(7);
  solver.annealer_options().sampler.num_reads = 100;
  for (BackendKind backend : {BackendKind::kClassical, BackendKind::kAnnealer}) {
    const SolveReport report = solver.solve(env, backend);
    if (!report.ran) {
      std::printf("%-9s: %s\n", backend_name(backend), report.failure_message().c_str());
      continue;
    }
    std::printf("%-9s: cover { ", backend_name(backend));
    for (std::size_t i = 0; i < 5; ++i) {
      if (report.best_assignment[i]) std::printf("%c ", names[i]);
    }
    std::printf("} size=%zu [%s]",
                problem.cover_size(report.best_assignment),
                quality_name(report.best_quality));
    if (backend == BackendKind::kAnnealer) {
      std::printf("  (%zu/%zu reads optimal, %zu physical qubits)",
                  report.counts.optimal, report.counts.total(),
                  report.qubits_used);
    }
    std::printf("\n");
  }
  std::printf("\nExact minimum cover size: %zu\n", problem.optimal_cover_size());
  return 0;
}
