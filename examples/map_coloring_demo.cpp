// Map Coloring (Section VI-A-d): the one-hot-encoded NP-complete problem
// that earlier NchooseK work already handled (hard constraints only).
// Colors a random planar-style "map" of regions with 4 colors and shows the
// per-backend results plus the Table I constraint accounting.
#include <cstdio>

#include "graph/generators.hpp"
#include "problems/coloring.hpp"
#include "runtime/solver.hpp"

int main() {
  using namespace nck;

  Rng rng(5);
  const Graph map = region_map_graph(3, 3, 0.4, rng);
  const MapColoringProblem problem{map, 4};
  std::printf("Region map: %zu regions, %zu adjacencies; 4 colors "
              "(feasible: %s)\n\n",
              map.num_vertices(), map.num_edges(),
              problem.feasible() ? "yes" : "no");

  const Env env = problem.encode();
  std::printf("NchooseK program: %zu variables (|V| * colors), "
              "%zu constraints (|V| + colors * |E|), %zu non-symmetric\n\n",
              env.num_vars(), env.num_constraints(), env.num_nonsymmetric());

  Solver solver(31);
  solver.annealer_options().sampler.num_reads = 100;
  for (BackendKind backend : {BackendKind::kClassical, BackendKind::kAnnealer}) {
    const SolveReport report = solver.solve(env, backend);
    if (!report.ran) {
      std::printf("%-9s: %s\n", backend_name(backend), report.failure_message().c_str());
      continue;
    }
    const auto colors =
        decode_one_hot(report.best_assignment, map.num_vertices(), 4);
    std::printf("%-9s: [%s]", backend_name(backend),
                quality_name(report.best_quality));
    if (colors) {
      std::printf(" coloring:");
      for (int c : *colors) std::printf(" %d", c);
      std::printf(" (valid: %s)",
                  problem.verify(report.best_assignment) ? "yes" : "no");
    } else {
      std::printf(" (one-hot decode failed)");
    }
    if (backend == BackendKind::kAnnealer) {
      std::printf("  physical qubits=%zu", report.qubits_used);
    }
    std::printf("\n");
  }
  return 0;
}
